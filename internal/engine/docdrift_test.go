package engine

import (
	"bufio"
	"os"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// docTableOps extracts the op names from the "Query families served by the
// engine" table in the root package documentation.  Table rows are doc
// lines of the form "//\t<op>  <family>  <cost>"; continuation lines are
// indented past the tab and carry no op.  Slash-combined rows (the
// primitives) contribute one op per slash-separated token.
func docTableOps(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()

	var ops []string
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		body, ok := strings.CutPrefix(line, "//\t")
		if !ok {
			if inTable {
				break // table ended (blank doc line or prose)
			}
			continue
		}
		first := strings.Fields(body)
		if len(first) == 0 || strings.HasPrefix(body, " ") {
			continue // continuation line, indented past the tab
		}
		switch {
		case first[0] == "op":
			inTable = true // header row
			continue
		case strings.HasPrefix(first[0], "--"):
			continue // separator row
		}
		if !inTable {
			continue // some other code block (quick start etc.)
		}
		for _, tok := range strings.Split(first[0], "/") {
			if tok != "" {
				ops = append(ops, tok)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan %s: %v", path, err)
	}
	if !inTable || len(ops) == 0 {
		t.Fatalf("no op table found in %s; did the doc.go table format change?", path)
	}
	return ops
}

// docCodeRows extracts (code, http, retryable) triples from the error
// code table in the root package documentation.  Rows are doc lines of
// the form "//\t<code>  <http>  <yes|no>  <meaning>"; continuation lines
// are indented past the tab and carry no code.
func docCodeRows(t *testing.T, path string) [][3]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()

	var rows [][3]string
	inTable := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		body, ok := strings.CutPrefix(sc.Text(), "//\t")
		if !ok {
			if inTable {
				break
			}
			continue
		}
		fields := strings.Fields(body)
		if len(fields) == 0 || strings.HasPrefix(body, " ") {
			continue // continuation line
		}
		switch {
		case fields[0] == "code" && len(fields) > 1 && fields[1] == "http":
			inTable = true // header row
			continue
		case strings.HasPrefix(fields[0], "--"):
			continue // separator row
		}
		if !inTable {
			continue // a different table (the op table, usage blocks)
		}
		if len(fields) < 3 {
			t.Fatalf("code table row %q has fewer than 3 columns", body)
		}
		rows = append(rows, [3]string{fields[0], fields[1], fields[2]})
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan %s: %v", path, err)
	}
	if !inTable || len(rows) == 0 {
		t.Fatalf("no error-code table found in %s; did the doc.go table format change?", path)
	}
	return rows
}

// TestDocCodeTableMatchesEngine fails when the error-code table in the
// root doc.go and the engine's code set drift apart in either direction
// — a code added without a documented row, a documented row naming a
// code the engine no longer emits, or a row whose HTTP status or
// retryability contradicts the implementation.
func TestDocCodeTableMatchesEngine(t *testing.T) {
	rows := docCodeRows(t, "../../doc.go")

	codes := Codes()
	if len(rows) != len(codes) {
		var documented []string
		for _, r := range rows {
			documented = append(documented, r[0])
		}
		t.Errorf("doc.go code table documents %d codes %v, engine emits %d %v",
			len(rows), documented, len(codes), codes)
	}
	docSet := make(map[string][3]string, len(rows))
	for _, r := range rows {
		if _, dup := docSet[r[0]]; dup {
			t.Errorf("doc.go code table lists %q twice", r[0])
		}
		docSet[r[0]] = r
	}
	for _, c := range codes {
		r, ok := docSet[string(c)]
		if !ok {
			t.Errorf("engine code %q missing from the doc.go code table", c)
			continue
		}
		delete(docSet, string(c))
		if want := strconv.Itoa(c.HTTPStatus()); r[1] != want {
			t.Errorf("doc.go documents code %q with HTTP %s, engine maps it to %s", c, r[1], want)
		}
		wantRetry := "no"
		if c.Retryable() {
			wantRetry = "yes"
		}
		if r[2] != wantRetry {
			t.Errorf("doc.go documents code %q retryable=%s, engine says %s", c, r[2], wantRetry)
		}
	}
	for code := range docSet {
		t.Errorf("doc.go code table row %q has no matching engine code", code)
	}
}

// TestDocOpTableMatchesEngine fails when the op table in the root doc.go
// and the engine's registered op set drift apart in either direction: an
// op added to the engine without a documented row, or a documented row
// naming an op the engine no longer serves.
func TestDocOpTableMatchesEngine(t *testing.T) {
	documented := docTableOps(t, "../../doc.go")

	docSet := make(map[string]bool, len(documented))
	for _, op := range documented {
		if docSet[op] {
			t.Errorf("doc.go op table lists %q twice", op)
		}
		docSet[op] = true
	}
	engSet := make(map[string]bool)
	for _, op := range Ops() {
		engSet[string(op)] = true
	}

	var missing, stale []string
	for op := range engSet {
		if !docSet[op] {
			missing = append(missing, op)
		}
	}
	for op := range docSet {
		if !engSet[op] {
			stale = append(stale, op)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	if len(missing) > 0 {
		t.Errorf("engine ops missing from the doc.go op table: %v", missing)
	}
	if len(stale) > 0 {
		t.Errorf("doc.go op table rows with no matching engine op: %v", stale)
	}
}
