package engine

import (
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/workload"
)

// benchTree matches the BenchmarkE6MeanTopKSymDiff workload in the root
// bench suite, so the cached/uncached numbers here are directly comparable
// to the raw library cost of one mean top-k query (~tens of ms).
func benchTree() *andxor.Tree {
	return workload.BID(rand.New(rand.NewSource(7)), 200, 2)
}

const benchK = 10

// cachedBenchBatch is the number of queries per iteration in the cached
// (sub-microsecond) benchmarks: at the fixed -benchtime the bench.json
// gates use, a single ~1µs query yields a sample below the `benchjson
// compare -mintime` noise floor and would silently lose regression
// gating.  ns/op for these benchmarks is therefore per batch of this
// many queries.
const cachedBenchBatch = 64

// BenchmarkEngineCachedTopK measures repeated top-k queries against one
// registered tree on a warm cache: every query pays only for the request
// dispatch and the response copy, not the generating functions.  ns/op
// covers cachedBenchBatch queries.
func BenchmarkEngineCachedTopK(b *testing.B) {
	e := New(Options{})
	if err := e.Register("db", benchTree()); err != nil {
		b.Fatal(err)
	}
	req := Request{Tree: "db", Op: OpTopKMean, K: benchK}
	if resp := e.Query(req); !resp.Ok() { // warm the cache
		b.Fatal(resp.Error)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < cachedBenchBatch; r++ {
			if resp := e.Query(req); !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	}
}

// BenchmarkEngineUncachedTopK is the cold path: caching disabled, so every
// query recomputes the rank distribution from scratch.  The cached variant
// above must beat this by well over the 5x acceptance bar.
func BenchmarkEngineUncachedTopK(b *testing.B) {
	e := New(Options{CacheEntries: -1})
	if err := e.Register("db", benchTree()); err != nil {
		b.Fatal(err)
	}
	req := Request{Tree: "db", Op: OpTopKMean, K: benchK}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := e.Query(req); !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
}

// BenchmarkEngineFamilyMix drives one warm query per consensus family
// through the engine, the serving-layer cost of the full op surface: all
// answers come from the cache, so this measures dispatch + response
// copying across heterogeneous response shapes.
func BenchmarkEngineFamilyMix(b *testing.B) {
	e := New(Options{})
	if err := e.Register("db", workload.Labeled(rand.New(rand.NewSource(8)), 30, 2, 3)); err != nil {
		b.Fatal(err)
	}
	safe, _ := spjFixture()
	reqs := []Request{
		{Tree: "db", Op: OpTopKMean, K: 5},
		{Tree: "db", Op: OpMeanWorld},
		{Tree: "db", Op: OpClusteringMean},
		{Tree: "db", Op: OpAggregateMean, K: 5},
		{Tree: "db", Op: OpRankingConsensus, Mode: ModeAuto},
		{Op: OpSPJEval, SPJ: safe},
	}
	for _, resp := range e.Do(reqs) { // warm every family's cache entry
		if !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, resp := range e.Do(reqs) {
			if !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	}
}

// BenchmarkEngineCachedTopKParallel drives the warm path from parallel
// clients through the worker pool.  ns/op covers cachedBenchBatch
// queries (see cachedBenchBatch).
func BenchmarkEngineCachedTopKParallel(b *testing.B) {
	e := New(Options{})
	if err := e.Register("db", benchTree()); err != nil {
		b.Fatal(err)
	}
	req := Request{Tree: "db", Op: OpTopKMean, K: benchK}
	if resp := e.Query(req); !resp.Ok() {
		b.Fatal(resp.Error)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			for r := 0; r < cachedBenchBatch; r++ {
				if resp := e.Query(req); !resp.Ok() {
					b.Fatal(resp.Error)
				}
			}
		}
	})
}

// BenchmarkEngineBatchMixed measures a warm mixed batch (the Engine.Do fan
// -out) of the typical dashboard queries against one tree.
func BenchmarkEngineBatchMixed(b *testing.B) {
	e := New(Options{})
	if err := e.Register("db", benchTree()); err != nil {
		b.Fatal(err)
	}
	reqs := []Request{
		{Tree: "db", Op: OpTopKMean, K: benchK},
		{Tree: "db", Op: OpTopKMean, K: benchK, Metric: MetricFootrule},
		{Tree: "db", Op: OpRankDist, K: benchK},
		{Tree: "db", Op: OpSizeDist},
		{Tree: "db", Op: OpMembership},
	}
	for _, resp := range e.Do(reqs) { // warm
		if !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, resp := range e.Do(reqs) {
			if !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	}
}

// largeBenchTree is a tuple-independent database an order of magnitude
// beyond the exact path's practical size: at 6000 alternatives one exact
// rank-distribution computation costs ~4*n^2*k^2 coefficient operations
// (tens of seconds single-threaded), while a few hundred alternatives
// answer interactively.  The budget matches a dashboard-grade guarantee.
func largeBenchTree() *andxor.Tree {
	return workload.Independent(rand.New(rand.NewSource(17)), 6000)
}

var largeBenchReq = Request{
	Tree: "big", Op: OpTopKMean, K: benchK,
	Mode: ModeAuto, Epsilon: 0.05, Delta: 0.001,
}

// BenchmarkApproxLargeTree is the acceptance benchmark of the adaptive
// backend: in auto mode the engine routes this tree (>= 10x beyond the
// exact path's practical size, cf. benchTree's 400 alternatives) to the
// Monte-Carlo backend and answers in a fraction of the exact cost —
// compare BenchmarkExactLargeTree, which must be >= 5x slower.  Caching is
// disabled so every iteration pays the full per-query cost.
func BenchmarkApproxLargeTree(b *testing.B) {
	e := New(Options{CacheEntries: -1})
	if err := e.Register("big", largeBenchTree()); err != nil {
		b.Fatal(err)
	}
	if resp := e.Query(largeBenchReq); !resp.Ok() {
		b.Fatal(resp.Error)
	} else if resp.Approx == nil || resp.Approx.Backend != "approx" {
		b.Fatalf("auto mode served %+v, want the approx backend", resp.Approx)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := e.Query(largeBenchReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
}

// BenchmarkExactLargeTree forces the same query through the exact
// generating-function path on the same tree: the denominator of the
// acceptance ratio (~23s per iteration vs ~0.6s approx).  It skips in
// short mode so the CI bench smoke (`make bench`, which passes -short)
// stays fast; run `go test ./internal/engine -bench LargeTree` to measure
// the ratio.
func BenchmarkExactLargeTree(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping the ~23s exact large-tree baseline in short mode")
	}
	e := New(Options{CacheEntries: -1})
	if err := e.Register("big", largeBenchTree()); err != nil {
		b.Fatal(err)
	}
	req := largeBenchReq
	req.Mode = ModeExact
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if resp := e.Query(req); !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
}

// BenchmarkEngineColdRankDist measures the one-time cost a fresh tree pays
// on its first rank-distribution query (the intermediate the cache then
// amortizes), including the RanksParallel fan-out.
func BenchmarkEngineColdRankDist(b *testing.B) {
	tr := benchTree()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := New(Options{})
		if err := e.Register("db", tr); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if resp := e.Query(Request{Tree: "db", Op: OpRankDist, K: benchK}); !resp.Ok() {
			b.Fatal(resp.Error)
		}
	}
}

// mutateBenchTree is the B2 workload of the bench suite (BID, 256 blocks,
// up to 2 alternatives) on which the mutate-vs-reregister acceptance gate
// is measured.
func mutateBenchTree() *andxor.Tree {
	return workload.BID(rand.New(rand.NewSource(20)), 256, 2)
}

// BenchmarkMutateVsReregister compares the two ways to change one tuple's
// probability and read the affected marginal back: the in-place delta path
// (OpMutate patches the tree, the compiled kernel and every resident
// cached intermediate — including, since the repair path landed, the k=20
// rank distribution warmed below — then the query hits the warm cache)
// versus the pre-mutation workflow (clone the tree, apply the update,
// re-register — full validation plus cache invalidation — then query
// cold).  The mutate side now pays the eager rank-repair sweep inside the
// mutation, so the gap here reflects repair-vs-revalidate rather than the
// purge-era patch-only margin; BenchmarkMutateRepairVsPurge isolates what
// the repair itself buys.
func BenchmarkMutateVsReregister(b *testing.B) {
	base := mutateBenchTree()
	alt := base.LeafAlternatives()[0]
	memReq := Request{Tree: "db", Op: OpMembership, Keys: []string{alt.Key}}

	b.Run("mutate", func(b *testing.B) {
		e := New(Options{})
		if err := e.Register("db", base); err != nil {
			b.Fatal(err)
		}
		// Warm the kernel and the membership map so the steady-state delta
		// path — not a first-touch compile — is what is measured.
		if resp := e.Query(Request{Tree: "db", Op: OpRankDist, K: 20}); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		if resp := e.Query(memReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mreq := Request{Tree: "db", Op: OpMutate, Mutation: &MutationRequest{
				Kind: "set-prob", Key: alt.Key, Score: alt.Score,
				Prob: 0.05 + float64(i%9)*0.1, Renormalize: true,
			}}
			if resp := e.Query(mreq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
			if resp := e.Query(memReq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	})

	b.Run("reregister", func(b *testing.B) {
		e := New(Options{})
		if err := e.Register("db", base); err != nil {
			b.Fatal(err)
		}
		if resp := e.Query(memReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nt := base.Clone()
			u := andxor.Update{
				Kind: andxor.UpdateSetProb, Key: alt.Key, Score: alt.Score,
				Prob: 0.05 + float64(i%9)*0.1, Renormalize: true,
			}
			if _, err := nt.Apply(u); err != nil {
				b.Fatal(err)
			}
			if err := e.Register("db", nt); err != nil {
				b.Fatal(err)
			}
			if resp := e.Query(memReq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	})
}

// BenchmarkMutateVsReregisterRankDist is the rank-distribution variant of
// the pair: a weight change moves every tuple's rank distribution, so
// both sides re-derive the k=20 sweep each iteration — the mutate side
// eagerly inside the mutation (the repair pass re-seeds the cache and the
// follow-up query hits), the reregister side lazily on the cold query.
// The delta path's advantage here is only the saved
// clone/validate/recompile — this pins the patch-plus-repair overhead as
// negligible against a real sweep, not a 10x gate.
func BenchmarkMutateVsReregisterRankDist(b *testing.B) {
	base := mutateBenchTree()
	alt := base.LeafAlternatives()[0]
	rankReq := Request{Tree: "db", Op: OpRankDist, K: 20, Keys: []string{alt.Key}}

	b.Run("mutate", func(b *testing.B) {
		e := New(Options{})
		if err := e.Register("db", base); err != nil {
			b.Fatal(err)
		}
		if resp := e.Query(rankReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mreq := Request{Tree: "db", Op: OpMutate, Mutation: &MutationRequest{
				Kind: "set-prob", Key: alt.Key, Score: alt.Score,
				Prob: 0.05 + float64(i%9)*0.1, Renormalize: true,
			}}
			if resp := e.Query(mreq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
			if resp := e.Query(rankReq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	})

	b.Run("reregister", func(b *testing.B) {
		e := New(Options{})
		if err := e.Register("db", base); err != nil {
			b.Fatal(err)
		}
		if resp := e.Query(rankReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nt := base.Clone()
			u := andxor.Update{
				Kind: andxor.UpdateSetProb, Key: alt.Key, Score: alt.Score,
				Prob: 0.05 + float64(i%9)*0.1, Renormalize: true,
			}
			if _, err := nt.Apply(u); err != nil {
				b.Fatal(err)
			}
			if err := e.Register("db", nt); err != nil {
				b.Fatal(err)
			}
			if resp := e.Query(rankReq); !resp.Ok() {
				b.Fatal(resp.Error)
			}
		}
	})
}

// BenchmarkMutateRepairVsPurge measures what the epoch-carrying repair
// path buys on B2 (n=256, k=20) under read-your-writes traffic: per
// round, both sides apply the same 64 weight-only updates and serve 64
// k=20 rank-distribution reads, each read current as of the writes before
// it.  "repair" coalesces the writes into one batched mutation — one
// entry write lock, one arena patch, one epoch bump, and one shared
// RanksAll sweep that re-seeds the cache — so all 64 reads are warm
// hits.  "purge" is the pre-batch engine (carry-over disabled): every
// write purges the epoch namespace, so the read after it recomputes the
// full sweep from scratch.  ns/op covers the whole 64-write/64-read
// round.  Acceptance gate: repair must beat purge by >= 5x.
func BenchmarkMutateRepairVsPurge(b *testing.B) {
	base := mutateBenchTree()
	alts := base.LeafAlternatives()
	rankReq := Request{Tree: "db", Op: OpRankDist, K: 20}
	batch := make([]MutationRequest, cachedBenchBatch)
	for i := range batch {
		a := alts[i]
		batch[i] = MutationRequest{
			Kind: "set-prob", Key: a.Key, Score: a.Score,
			Prob: 0.05 + float64(i%9)*0.1, Renormalize: true,
		}
	}

	run := func(b *testing.B, purge bool) {
		e := New(Options{})
		e.repairDisabled = purge
		if err := e.Register("db", base); err != nil {
			b.Fatal(err)
		}
		if resp := e.Query(rankReq); !resp.Ok() {
			b.Fatal(resp.Error)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if purge {
				for j := range batch {
					if resp := e.Query(Request{Tree: "db", Op: OpMutate, Mutation: &batch[j]}); !resp.Ok() {
						b.Fatal(resp.Error)
					}
					if resp := e.Query(rankReq); !resp.Ok() {
						b.Fatal(resp.Error)
					}
				}
			} else {
				resp := e.Query(Request{Tree: "db", Op: OpMutate, Mutations: batch})
				if !resp.Ok() {
					b.Fatal(resp.Error)
				}
				if resp.Epoch != uint64(i+1) {
					b.Fatalf("round %d bumped epoch to %d, want one bump per batch", i, resp.Epoch)
				}
				for j := 0; j < len(batch); j++ {
					if resp := e.Query(rankReq); !resp.Ok() {
						b.Fatal(resp.Error)
					}
				}
			}
		}
	}
	b.Run("repair", func(b *testing.B) { run(b, false) })
	b.Run("purge", func(b *testing.B) { run(b, true) })
}
