package engine

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestFenceObserve pins the monotonic-max contract: equal and higher
// epochs pass (and raise the bar), lower epochs are rejected forever.
func TestFenceObserve(t *testing.T) {
	var f Fence
	if !f.Observe(0) {
		t.Fatal("epoch 0 on a fresh fence rejected")
	}
	if !f.Observe(3) {
		t.Fatal("first real epoch rejected")
	}
	if !f.Observe(3) {
		t.Fatal("equal epoch rejected; the current coordinator must keep working")
	}
	if f.Observe(2) {
		t.Fatal("stale epoch accepted")
	}
	if !f.Observe(7) || f.Epoch() != 7 {
		t.Fatalf("higher epoch not adopted: epoch = %d, want 7", f.Epoch())
	}
	if f.Observe(3) {
		t.Fatal("previously valid epoch accepted after a higher one was seen")
	}

	// Concurrent observers converge on the max.
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(e uint64) {
			defer wg.Done()
			f.Observe(e)
		}(uint64(i))
	}
	wg.Wait()
	if f.Epoch() != 31 {
		t.Fatalf("concurrent observes: epoch = %d, want 31", f.Epoch())
	}
}

// TestFencedHandler pins the worker-side enforcement: unstamped requests
// pass untouched, current and newer epochs pass (teaching the worker the
// newer epoch), stale epochs get a 409 with code "fenced", and garbage
// stamps get a 400 — all without the inner handler ever seeing the
// rejected request.
func TestFencedHandler(t *testing.T) {
	var f Fence
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(FencedHandler(inner, &f))
	defer srv.Close()

	do := func(stamp string) (int, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if stamp != "" {
			req.Header.Set(FencingHeader, stamp)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if status, body := do(""); status != 200 || string(body) != "ok" {
		t.Fatalf("unstamped request: status %d body %q, want 200 ok", status, body)
	}
	if status, _ := do("2"); status != 200 {
		t.Fatalf("first stamped request: status %d, want 200", status)
	}
	if f.Epoch() != 2 {
		t.Fatalf("worker did not learn the stamped epoch: %d, want 2", f.Epoch())
	}
	if status, _ := do("2"); status != 200 {
		t.Fatalf("equal-epoch request: status %d, want 200", status)
	}
	status, body := do("1")
	if status != http.StatusConflict {
		t.Fatalf("stale request: status %d, want 409 (%s)", status, body)
	}
	var errBody struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(body, &errBody); err != nil {
		t.Fatalf("stale rejection body is not JSON: %q", body)
	}
	if Code(errBody.Code) != CodeFenced || !strings.Contains(errBody.Error, "stale") {
		t.Fatalf("stale rejection body = %+v, want code %q", errBody, CodeFenced)
	}
	if status, _ := do("5"); status != 200 || f.Epoch() != 5 {
		t.Fatalf("newer epoch not adopted (status %d, epoch %d)", status, f.Epoch())
	}
	if status, _ := do("not-a-number"); status != http.StatusBadRequest {
		t.Fatalf("malformed stamp: status %d, want 400", status)
	}
	// A malformed stamp must not move the bar.
	if f.Epoch() != 5 {
		t.Fatalf("malformed stamp changed the epoch: %d, want 5", f.Epoch())
	}
}
