// Package engine turns the consensus library into a concurrent
// consensus-query service: it registers and/xor trees by name and serves
// every consensus query family of the paper through a bounded worker
// pool — rank distributions, mean/median top-k answers under the
// Section 5 metrics, consensus worlds under the symmetric-difference and
// Jaccard distances (Section 4), consensus full rankings aggregated with
// the footrule/Kemeny/Borda rules (Section 2), consensus clusterings
// (Section 6.2), group-by aggregate answers (Section 6.1), world-size and
// membership probabilities, and SPJ query evaluation through safe plans
// with a lineage fallback (the Dalvi-Suciu dichotomy of Section 2).
//
// The expensive intermediates behind those queries — the rank
// distribution of Section 3.3, world-size polynomials, the Upsilon
// statistics of Section 5.4, co-clustering matrices, enumerated or
// sampled world-ranking distributions, SPJ lineage probabilities — are
// memoized per tree in an LRU cache with singleflight deduplication, so
// concurrent requests against the same tree compute each intermediate
// once and every later query pays only for the cheap final step (a sort
// or a small assignment problem).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"consensus/internal/andxor"
	"consensus/internal/approx"
	"consensus/internal/genfunc"
	"consensus/internal/setconsensus"
	"consensus/internal/topk"
	"consensus/internal/types"
)

// DefaultCacheEntries is the LRU capacity used when Options.CacheEntries
// is zero.
const DefaultCacheEntries = 512

// Options configures a new Engine.
type Options struct {
	// Workers bounds the number of concurrently executing queries;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// CacheEntries is the LRU capacity (in cached intermediates, not
	// bytes); 0 selects DefaultCacheEntries, negative disables caching.
	CacheEntries int
	// RankWorkers is the per-query parallelism of rank-distribution
	// computations (genfunc.RanksParallel) and of Monte-Carlo sampling
	// shards; <= 0 selects GOMAXPROCS.
	RankWorkers int

	// DefaultMode is applied to requests that leave Request.Mode empty:
	// ModeExact (also the meaning of ""), ModeApprox or ModeAuto.  A
	// server fronting huge trees typically sets ModeAuto here so plain
	// clients transparently get the cheaper backend.
	DefaultMode string
	// DefaultEpsilon / DefaultDelta are the error budget applied when an
	// approx/auto request leaves Epsilon/Delta zero; zero falls through
	// to approx.DefaultEpsilon / approx.DefaultDelta.
	DefaultEpsilon float64
	DefaultDelta   float64

	// AdmissionCapacity enables worker-side backpressure: requests are
	// priced by OpCost and shed with CodeOverloaded the moment the priced
	// in-flight work would exceed this capacity, instead of queueing in
	// front of the worker pool.  <= 0 disables shedding (requests queue
	// on the pool as before).  The distributed coordinator treats
	// overloaded as retryable, so a hot worker sheds onto its replicas.
	AdmissionCapacity int
}

// Engine is a concurrent consensus-query service over named trees.  All
// methods are safe for concurrent use.
type Engine struct {
	mu      sync.RWMutex
	trees   map[string]*treeEntry
	nextGen uint64

	cache       *cache
	sem         chan struct{}
	adm         *Admission
	rankWorkers int

	defaultMode    string
	defaultEpsilon float64
	defaultDelta   float64

	// repairDisabled forces every mutation down the purge path (no warm
	// carry-over of rank/size intermediates).  Test/bench knob only: the
	// repair-vs-purge benchmark needs the old behavior as its baseline.
	repairDisabled bool
}

// treeEntry pins a registered tree together with its registration
// generation; the generation namespaces cache keys, so re-registering a
// name invalidates every cached intermediate of the old tree (the old
// entries are also purged eagerly, see Register).
type treeEntry struct {
	// rw serializes mutations against queries: every query holds the read
	// lock across its whole dispatch (so it never observes a half-applied
	// mutation — no torn tree, program or epoch state), and mutations hold
	// the write lock across tree patch, program patch and epoch bump.
	// Go's RWMutex blocks new readers once a writer waits, so mutations
	// cannot starve under a steady query stream.
	rw   sync.RWMutex
	tree *andxor.Tree
	// owned reports whether the entry's tree is an engine-private clone.
	// Register stores the caller's tree directly (zero-copy for the
	// immutable common case); the first mutation clones it, so a tree
	// handed to Register is never mutated behind the caller's back.
	// Guarded by rw.
	owned bool
	gen   uint64
	// epoch counts the mutations applied under this generation.  It
	// sub-namespaces cache keys (see epochPrefix), so a mutation
	// invalidates the cached intermediates of the pre-mutation state
	// without disturbing other trees or requiring re-registration.
	epoch atomic.Uint64

	// mu guards rankKs: the rank cutoffs computed under this generation
	// and epoch, sorted ascending.  A resident distribution with cutoff
	// K' >= k satisfies every ...Ranks consumer, so topk queries reuse the
	// smallest resident entry covering k instead of recomputing.
	mu     sync.Mutex
	rankKs []int

	// retired is set when this generation is replaced or unregistered.
	// Queries already in flight on the old entry may insert cache entries
	// after the retirer's purge ran; they re-purge on completion when they
	// see the flag, so no dead-generation entry outlives its last reader.
	retired atomic.Bool

	// prog is the tree compiled for the incremental generating-function
	// kernel, built on first use and shared by every rank/precedence/size
	// query of this generation (a Program's compiled state only changes
	// through mutations, which exclude all readers via rw; per-query state
	// lives in evaluation arenas).  progMu makes the lazy compile safe
	// under the shared read lock and lets the mutation path patch or swap
	// the program in place — a sync.Once could not be re-pointed after a
	// structural mutation.
	progMu sync.Mutex
	prog   *genfunc.Program
}

// program returns the entry's compiled kernel program, compiling on first
// use.
func (te *treeEntry) program() *genfunc.Program {
	te.progMu.Lock()
	defer te.progMu.Unlock()
	if te.prog == nil {
		te.prog = genfunc.Compile(te.tree)
	}
	return te.prog
}

// Stats is a snapshot of engine activity.
type Stats struct {
	// Trees is the number of registered trees.
	Trees int `json:"trees"`
	// CacheEntries is the number of resident cached intermediates.
	CacheEntries int `json:"cache_entries"`
	// Computes counts cache misses, i.e. intermediates actually computed.
	Computes int64 `json:"computes"`
	// Hits counts lookups served by a resident or in-flight entry.
	Hits int64 `json:"hits"`
}

// New builds an engine with the given options.
func New(opts Options) *Engine {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	capEntries := opts.CacheEntries
	switch {
	case capEntries == 0:
		capEntries = DefaultCacheEntries
	case capEntries < 0:
		capEntries = 0 // cache disabled
	}
	rankWorkers := opts.RankWorkers
	if rankWorkers <= 0 {
		rankWorkers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		trees:          make(map[string]*treeEntry),
		nextGen:        1,
		cache:          newCache(capEntries),
		sem:            make(chan struct{}, workers),
		adm:            NewAdmission(opts.AdmissionCapacity),
		rankWorkers:    rankWorkers,
		defaultMode:    opts.DefaultMode,
		defaultEpsilon: opts.DefaultEpsilon,
		defaultDelta:   opts.DefaultDelta,
	}
}

// Register makes t queryable under name, replacing any previous tree of
// that name (and implicitly invalidating its cached intermediates).
func (e *Engine) Register(name string, t *andxor.Tree) error {
	if name == "" {
		return fmt.Errorf("engine: tree name must be non-empty")
	}
	// '@' and '/' delimit the generation-namespaced cache keys; a name
	// containing them could alias another tree's key prefix and have its
	// cache wrongly purged on that tree's re-registration.
	if strings.ContainsAny(name, "@/") {
		return fmt.Errorf("engine: tree name %q must not contain '@' or '/'", name)
	}
	if t == nil {
		return fmt.Errorf("engine: tree %q is nil", name)
	}
	e.mu.Lock()
	old := e.trees[name]
	e.trees[name] = &treeEntry{tree: t, gen: e.nextGen}
	e.nextGen++
	e.mu.Unlock()
	if old != nil {
		e.retire(old, name)
	}
	return nil
}

// genPrefix is the cache-key namespace of one (tree, generation) pair:
// every cached intermediate key starts with it (continuing with the epoch,
// see epochPrefix), and retire/exec purge by it, covering all epochs at
// once.  The '@'/'/' rejection in Register keeps it unambiguous, and the
// trailing '.' keeps generation 1 from matching generation 12's keys.
func genPrefix(name string, gen uint64) string {
	return fmt.Sprintf("%s@%d.", name, gen)
}

// epochPrefix narrows genPrefix to one mutation epoch; a mutation purges
// exactly its predecessor's prefix.  The trailing '/' keeps epoch 1 from
// matching epoch 12's keys.
func epochPrefix(name string, gen, epoch uint64) string {
	return fmt.Sprintf("%s@%d.%d/", name, gen, epoch)
}

// retire purges the cache entries of a replaced or removed generation.
// The flag-then-purge order pairs with exec's insert-then-check: whichever
// of the two purges runs last sees every insert (the cache mutex
// serializes them), so dead entries cannot survive.
func (e *Engine) retire(te *treeEntry, name string) {
	te.retired.Store(true)
	e.cache.removePrefix(genPrefix(name, te.gen))
}

// Unregister removes name and reports whether it was registered.  The
// tree's cached intermediates are dropped so they stop occupying LRU
// slots.
func (e *Engine) Unregister(name string) bool {
	e.mu.Lock()
	old, ok := e.trees[name]
	delete(e.trees, name)
	e.mu.Unlock()
	if ok {
		e.retire(old, name)
	}
	return ok
}

// Tree returns the tree registered under name.  Before the first
// mutation the registered tree itself is returned (it is immutable from
// the engine's side: the first mutation clones it).  After a mutation the
// entry's tree is an engine-private clone that later mutations patch in
// place, so Tree returns a fresh deep copy — never a tree the engine may
// concurrently rewrite.
func (e *Engine) Tree(name string) (*andxor.Tree, bool) {
	e.mu.RLock()
	te, ok := e.trees[name]
	e.mu.RUnlock()
	if !ok {
		return nil, false
	}
	te.rw.RLock()
	defer te.rw.RUnlock()
	if te.owned {
		return te.tree.Clone(), true
	}
	return te.tree, true
}

// Trees returns the registered names, sorted.
func (e *Engine) Trees() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.trees))
	for name := range e.trees {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of engine activity.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	n := len(e.trees)
	e.mu.RUnlock()
	return Stats{
		Trees:        n,
		CacheEntries: e.cache.len(),
		Computes:     e.cache.computes.Load(),
		Hits:         e.cache.hits.Load(),
	}
}

// Query executes one request through the worker pool.
func (e *Engine) Query(req Request) Response {
	return e.QueryContext(context.Background(), req)
}

// QueryContext is Query with cancellation: a request still queued for a
// pool slot when ctx is cancelled returns an error response instead of
// blocking (and computing an answer nobody will read).  Cancellation does
// not interrupt an exact computation already running, but the Monte-Carlo
// backend checks the context between sampling batches and stops promptly.
func (e *Engine) QueryContext(ctx context.Context, req Request) Response {
	// Backpressure first: shed before queueing on the pool, so a hot
	// worker answers "overloaded" promptly instead of growing a queue of
	// work it cannot start.
	cost := OpCost(req.Op)
	if !e.adm.Admit(cost) {
		return errorResponse(req, errf(CodeOverloaded,
			"engine: overloaded, shedding %s (in-flight cost %d of %d)",
			req.Op, e.adm.InFlight(), e.adm.capacity))
	}
	defer e.adm.Release(cost)
	select {
	case e.sem <- struct{}{}:
	case <-ctx.Done():
		return errorResponse(req, errf(CodeOf(ctx.Err()), "engine: %v", ctx.Err()))
	}
	defer func() { <-e.sem }()
	return e.exec(ctx, req)
}

// Do executes a batch of requests, fanning out across the worker pool and
// returning the responses in request order.  Requests that share a tree
// deduplicate their intermediate computations through the cache, so a
// batch of q queries against one tree performs the expensive generating-
// function work once.
func (e *Engine) Do(reqs []Request) []Response {
	return e.DoContext(context.Background(), reqs)
}

// DoContext is Do with cancellation: requests not yet dispatched when ctx
// is cancelled come back as error responses, in-flight computations run to
// completion.
func (e *Engine) DoContext(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	// Spawn at most one goroutine per pool slot, not per request, so a
	// huge batch cannot allocate unbounded goroutines upfront.
	workers := cap(e.sem)
	if workers > len(reqs) {
		workers = len(reqs)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = e.QueryContext(ctx, reqs[i])
			}
		}()
	}
feed:
	for i := range reqs {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	// Requests never dispatched (feed stopped early) get an explicit
	// cancellation response; a processed slot always has Op or Error set.
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Op == "" && out[i].Error == "" && out[i].Tree == "" {
				out[i] = errorResponse(reqs[i], errf(CodeOf(err), "engine: %v", err))
			}
		}
	}
	return out
}

// exec runs one request to completion; the caller holds a pool slot.
func (e *Engine) exec(ctx context.Context, req Request) Response {
	resp := Response{Tree: req.Tree, Op: req.Op}
	if err := req.validate(); err != nil {
		// Structural invalidity is always the client's bug, whatever shape
		// the underlying message takes.
		return errorResponse(req, errf(CodeBadRequest, "%s", err.Error()))
	}
	if req.Op == OpSPJEval {
		// The query and database travel with the request; no registered
		// tree (or generation-namespaced cache entry) is involved.
		if err := e.dispatchSPJ(ctx, &resp, req); err != nil {
			resp = errorResponse(req, err)
		}
		return resp
	}
	e.mu.RLock()
	te, ok := e.trees[req.Tree]
	e.mu.RUnlock()
	if !ok {
		return errorResponse(req, errf(CodeUnknownTree, "engine: unknown tree %q", req.Tree))
	}
	if req.Op == OpMutate || req.Op == OpCondition {
		// Mutations take the entry's write lock inside; they must not hold
		// the read lock here.
		if err := e.mutate(&resp, te, req); err != nil {
			resp = errorResponse(req, err)
		}
	} else {
		// The read lock spans the whole dispatch so a concurrent mutation
		// can never be observed half-applied: tree, compiled program, epoch
		// and cache keys all belong to one consistent state.
		te.rw.RLock()
		resp.Epoch = te.epoch.Load()
		err := e.dispatch(ctx, &resp, te, req)
		te.rw.RUnlock()
		if err != nil {
			// Drop any partially populated answer fields: an error response
			// carries the error (and its code) alone.
			resp = errorResponse(req, err)
		}
	}
	if te.retired.Load() {
		// The tree was replaced or removed while we were computing; any
		// intermediate we just inserted is keyed to a dead generation.
		// Purge again so it does not linger in the LRU unreachable.
		e.cache.removePrefix(genPrefix(req.Tree, te.gen))
	}
	return resp
}

func (e *Engine) dispatch(ctx context.Context, resp *Response, te *treeEntry, req Request) error {
	backend, plan, err := e.backendFor(te, req)
	if err != nil {
		return err
	}
	if backend == approx.BackendApprox {
		return e.dispatchApprox(ctx, resp, te, req, plan)
	}
	if plan.mode != ModeExact {
		// The request was backend-aware (approx or auto): report which
		// backend actually served it.
		resp.Approx = &ApproxInfo{Backend: approx.BackendExact}
	}
	switch req.Op {
	case OpRankDist:
		k := clampK(te.tree, req.K)
		// Any resident distribution with cutoff >= k serves this: the
		// k-width response is an exact truncation of a larger one.
		rd, err := e.ranksAtLeast(te, req.Tree, k)
		if err != nil {
			return err
		}
		keys := req.Keys
		if len(keys) == 0 {
			keys = rd.Keys()
		}
		resp.Ranks = make(map[string][]float64, len(keys))
		resp.TopKProb = make(map[string]float64, len(keys))
		for _, key := range keys {
			dist := rd.Dist(key)
			if dist == nil {
				// Surface a key typo instead of fabricating a
				// probability-zero answer for a tuple that does not exist.
				return errf(CodeUnknownKey, "engine: tree %q has no tuple key %q", req.Tree, key)
			}
			if len(dist) > k {
				dist = dist[:k]
			}
			resp.Ranks[key] = dist
			resp.TopKProb[key] = rd.PrLE(key, k)
		}
		return nil

	case OpTopKMean:
		res, err := e.topkMean(te, req)
		if err != nil {
			return err
		}
		resp.TopK = append([]string(nil), res.tau...)
		// The Kendall consensus is served by the footrule optimum
		// (Section 5.5 equivalence), but the footrule objective value is
		// not the expected Kendall distance; leave Expected unset rather
		// than report a number for the wrong metric.
		if req.Metric != MetricKendall {
			resp.Expected = ptr(res.expected)
		}
		return nil

	case OpTopKMedian:
		k := clampK(te.tree, req.K)
		v, err := e.cache.get(e.key(te, req.Tree, "topk-median/%d", k), func() (any, error) {
			rd, err := e.ranksAtLeast(te, req.Tree, k)
			if err != nil {
				return nil, err
			}
			tau, err := topk.MedianSymDiffRanks(te.tree, rd, k)
			if err != nil {
				return nil, err
			}
			return topkResult{tau: tau, expected: topk.ExpectedNormSymDiff(rd, tau, k)}, nil
		})
		if err != nil {
			return err
		}
		res := v.(topkResult)
		resp.TopK = append([]string(nil), res.tau...)
		resp.Expected = ptr(res.expected)
		return nil

	case OpMeanWorld, OpMedianWorld:
		v, err := e.cache.get(e.key(te, req.Tree, "%s", req.Op), func() (any, error) {
			var w *types.World
			if req.Op == OpMeanWorld {
				w = setconsensus.MeanWorldSymDiff(te.tree)
			} else {
				w = setconsensus.MedianWorldSymDiff(te.tree)
			}
			return worldResult{world: w, expected: setconsensus.ExpectedSymDiff(te.tree, w)}, nil
		})
		if err != nil {
			return err
		}
		res := v.(worldResult)
		resp.World = res.world.Leaves()
		resp.Expected = ptr(res.expected)
		return nil

	case OpSizeDist:
		v, err := e.cache.get(e.key(te, req.Tree, "size-dist"), func() (any, error) {
			return []float64(te.program().WorldSizeDist()), nil
		})
		if err != nil {
			return err
		}
		resp.SizeDist = append([]float64(nil), v.([]float64)...)
		return nil

	case OpMembership:
		v, err := e.cache.get(e.key(te, req.Tree, "membership"), func() (any, error) {
			return te.tree.KeyMarginals(), nil
		})
		if err != nil {
			return err
		}
		all := v.(map[string]float64)
		keys := req.Keys
		if len(keys) == 0 {
			keys = te.tree.Keys()
		}
		resp.Probs = make(map[string]float64, len(keys))
		for _, key := range keys {
			p, ok := all[key]
			if !ok {
				return errf(CodeUnknownKey, "engine: tree %q has no tuple key %q", req.Tree, key)
			}
			resp.Probs[key] = p
		}
		return nil

	case OpWorldProb:
		w, err := types.NewWorld(req.World...)
		if err != nil {
			return err
		}
		resp.Value = ptr(andxor.WorldProb(te.tree, w))
		return nil

	case OpMeanWorldJaccard, OpMedianWorldJaccard:
		return e.jaccardWorld(resp, te, req)

	case OpClusteringMean:
		return e.clusteringMean(resp, te, req)

	case OpAggregateMean, OpAggregateMedian:
		return e.aggregateAnswer(resp, te, req)

	case OpRankingConsensus:
		err := e.rankingConsensus(resp, te, req)
		if err != nil && plan.mode == ModeAuto && errors.Is(err, errRankingEnumeration) {
			// The leaf-count heuristic underestimated the world count (the
			// enumeration cap is on raw worlds, not leaves); auto mode owns
			// the backend choice, so degrade to sampling instead of
			// surfacing an error that tells the client to do exactly that.
			return e.dispatchApprox(ctx, resp, te, req, plan)
		}
		return err
	}
	return fmt.Errorf("engine: unknown op %q", req.Op)
}

// dispatchSPJ answers OpSPJEval.  Mode handling mirrors dispatch: the op
// is exact-only (a safe plan or lineage evaluation, never sampling), so a
// forced approx mode is an error and auto/approx-aware requests report the
// exact backend.
func (e *Engine) dispatchSPJ(ctx context.Context, resp *Response, req Request) error {
	mode := effectiveMode(req.Mode, e.defaultMode)
	switch mode {
	case ModeExact:
	case ModeApprox:
		return approxSupports(req)
	case ModeAuto:
		resp.Approx = &ApproxInfo{Backend: approx.BackendExact}
	default:
		return fmt.Errorf("engine: unknown mode %q (want exact, approx or auto)", mode)
	}
	return e.spjEval(ctx, resp, req)
}

// topkResult / worldResult are the cached final answers.
type topkResult struct {
	tau      topk.List
	expected float64
}

type worldResult struct {
	world    *types.World
	expected float64
}

// topkMean answers OpTopKMean, caching the deterministic result per
// (tree, metric, k).  The Kendall consensus is the footrule optimum
// (Section 5.5's factor-2 equivalence), so both metrics share one entry.
func (e *Engine) topkMean(te *treeEntry, req Request) (topkResult, error) {
	metric, _ := normalizeMetric(req.Metric) // validate() already vetted it
	if metric == MetricKendall {
		metric = MetricFootrule
	}
	k := clampK(te.tree, req.K)
	v, err := e.cache.get(e.key(te, req.Tree, "topk-mean/%s/%d", metric, k), func() (any, error) {
		rd, err := e.ranksAtLeast(te, req.Tree, k)
		if err != nil {
			return nil, err
		}
		switch metric {
		case MetricSymDiff:
			tau := topk.MeanSymDiffRanks(rd, k)
			return topkResult{tau: tau, expected: topk.ExpectedNormSymDiff(rd, tau, k)}, nil
		case MetricIntersection:
			tau, err := topk.MeanIntersectionRanks(rd, k)
			if err != nil {
				return nil, err
			}
			return topkResult{tau: tau, expected: topk.ExpectedIntersection(rd, tau, k)}, nil
		default: // MetricFootrule (also serving Kendall)
			u, err := e.upsilons(te, req.Tree, k)
			if err != nil {
				return nil, err
			}
			tau, exp, err := topk.MeanFootruleRanks(rd, u, k)
			if err != nil {
				return nil, err
			}
			return topkResult{tau: tau, expected: exp}, nil
		}
	})
	if err != nil {
		return topkResult{}, err
	}
	return v.(topkResult), nil
}

// maxRankKs bounds the per-entry rank-cutoff index: every tracked cutoff
// costs a cache peek on reuse lookups and a repair slot on every mutation,
// so a client cycling arbitrary k values must not inflate either.  When
// the index is full the smallest cutoff is dropped — its cache entry stays
// resident until the LRU evicts it (an exact-k lookup still hits it), it
// just stops being found by ranksAtLeast and the mutation repair pass.
const maxRankKs = 8

// ranks returns the (cached) rank distribution of the tree with cutoff
// exactly k, recording the cutoff so ranksAtLeast can find it later.
func (e *Engine) ranks(te *treeEntry, name string, k int) (*genfunc.RankDist, error) {
	v, err := e.cache.get(e.key(te, name, "ranks/%d", k), func() (any, error) {
		return te.program().RanksParallel(k, e.rankWorkers)
	})
	if err != nil {
		return nil, err
	}
	rd := v.(*genfunc.RankDist)
	te.mu.Lock()
	pos := sort.SearchInts(te.rankKs, k)
	if pos == len(te.rankKs) || te.rankKs[pos] != k {
		te.rankKs = append(te.rankKs, 0)
		copy(te.rankKs[pos+1:], te.rankKs[pos:])
		te.rankKs[pos] = k
		if len(te.rankKs) > maxRankKs {
			// Drop the smallest cutoff: larger resident distributions serve
			// strictly more ranksAtLeast consumers.
			te.rankKs = append(te.rankKs[:0], te.rankKs[1:]...)
		}
	}
	te.mu.Unlock()
	return rd, nil
}

// ranksAtLeast returns a (cached) rank distribution with cutoff >= k,
// preferring the smallest resident distribution that already covers k:
// every ...Ranks consumer accepts rd.K >= k, so a top-k query after a
// larger rank-dist query reuses that work instead of recomputing.
func (e *Engine) ranksAtLeast(te *treeEntry, name string, k int) (*genfunc.RankDist, error) {
	te.mu.Lock()
	candidates := append([]int(nil), te.rankKs...)
	te.mu.Unlock()
	for _, kk := range candidates {
		if kk < k {
			continue
		}
		if v, ok := e.cache.peek(e.key(te, name, "ranks/%d", kk)); ok {
			return v.(*genfunc.RankDist), nil
		}
	}
	return e.ranks(te, name, k)
}

// upsilons returns the (cached) Section 5.4 Upsilon statistics for cutoff k.
func (e *Engine) upsilons(te *treeEntry, name string, k int) (*topk.Upsilons, error) {
	v, err := e.cache.get(e.key(te, name, "upsilons/%d", k), func() (any, error) {
		rd, err := e.ranksAtLeast(te, name, k)
		if err != nil {
			return nil, err
		}
		return topk.NewUpsilons(rd, k), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*topk.Upsilons), nil
}

// key builds a cache key namespaced by the tree's registration generation
// and mutation epoch.  Queries call it under the entry's read lock, so
// the epoch cannot move mid-key; a mutation bumping the epoch retargets
// every later key and purges the old epoch's entries.
func (e *Engine) key(te *treeEntry, name, format string, args ...any) string {
	return epochPrefix(name, te.gen, te.epoch.Load()) + fmt.Sprintf(format, args...)
}

// clampK caps k at the number of tuples, matching the library's top-k
// conventions and letting oversized cutoffs share one cache entry.
func clampK(t *andxor.Tree, k int) int {
	if n := len(t.Keys()); k > n {
		return n
	}
	return k
}
