package genfunc

import (
	"fmt"

	"consensus/internal/andxor"
	"consensus/internal/types"
)

// Legacy reference implementations of the batched statistics, built
// directly on the recursive evaluators Eval1/Eval2 exactly as the package
// computed them before the compiled incremental kernel.  The differential
// tests pin the kernel to these within 1e-12.

// ranksLegacy is the pre-kernel Ranks: one full recursive bivariate
// evaluation per leaf alternative.
func ranksLegacy(t *andxor.Tree, k int) (*RankDist, error) {
	if k < 1 {
		return nil, errRankCutoff(k)
	}
	if err := ValidateScores(t); err != nil {
		return nil, err
	}
	leaves := t.LeafAlternatives()
	keys := t.Keys()
	idx := make(map[string]int32, len(keys))
	for i, key := range keys {
		idx[key] = int32(i)
	}
	rd := newRankDist(keys, idx, k)
	for a, alt := range leaves {
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if i == a {
				return 0, 1
			}
			if l.Key != alt.Key && l.Score > alt.Score {
				return 1, 0
			}
			return 0, 0
		}, k-1, 1)
		dist := rd.eq[int(idx[alt.Key])*(k+1):]
		for j := 1; j <= k; j++ {
			dist[j] += f.Coeff(j-1, 1)
		}
	}
	rd.fillCumulative()
	return rd, nil
}

// expectedRankLegacy is the pre-kernel ExpectedRank: a full rank
// distribution at cutoff n plus one untruncated recursive bivariate
// evaluation per key for the absent-size term.
func expectedRankLegacy(t *andxor.Tree) (map[string]float64, error) {
	n := len(t.Keys())
	if n == 0 {
		return nil, fmt.Errorf("genfunc: empty tree")
	}
	rd, err := ranksLegacy(t, n)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, n)
	for _, key := range t.Keys() {
		s := 0.0
		for j := 1; j <= n; j++ {
			s += float64(j) * rd.PrEq(key, j)
		}
		key := key
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if l.Key == key {
				return 1, 1
			}
			return 1, 0
		}, t.NumLeaves(), 1)
		for sz := 0; sz <= t.NumLeaves(); sz++ {
			s += float64(sz) * f.Coeff(sz, 0)
		}
		out[key] = s
	}
	return out, nil
}

// validateScoresLegacy is the pre-kernel ValidateScores: one full
// recursive CoOccurrence evaluation per tied cross-key pair (iterated
// over a float64-keyed map, so the reported pair was nondeterministic;
// only the error verdict is comparable).
func validateScoresLegacy(t *andxor.Tree) error {
	leaves := t.LeafAlternatives()
	byScore := map[float64][]int{}
	for i, l := range leaves {
		byScore[l.Score] = append(byScore[l.Score], i)
	}
	for score, idxs := range byScore {
		if len(idxs) < 2 {
			continue
		}
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if leaves[i].Key == leaves[j].Key {
					continue
				}
				if CoOccurrence(t, map[int]bool{i: true, j: true}) > 0 {
					return fmt.Errorf("genfunc: alternatives %v and %v share score %v and can co-occur; ranking is ill-defined",
						leaves[i], leaves[j], score)
				}
			}
		}
	}
	return nil
}

// precedenceLegacy is the pre-kernel Precedence: one full recursive
// evaluation per alternative of keyI.
func precedenceLegacy(t *andxor.Tree, keyI, keyJ string) float64 {
	if keyI == keyJ {
		return 0
	}
	total := 0.0
	for a, alt := range t.LeafAlternatives() {
		if alt.Key != keyI {
			continue
		}
		score := alt.Score
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if i == a {
				return 0, 1
			}
			if l.Key == keyJ && l.Score > score {
				return 1, 0
			}
			return 0, 0
		}, 0, 1)
		total += f.Coeff(0, 1)
	}
	return total
}

// precedenceMatrixLegacy is the pre-kernel PrecedenceMatrix: one
// precedenceLegacy call per ordered key pair.
func precedenceMatrixLegacy(t *andxor.Tree, keys []string) [][]float64 {
	m := make([][]float64, len(keys))
	for i := range keys {
		m[i] = make([]float64, len(keys))
		for j := range keys {
			if i != j {
				m[i][j] = precedenceLegacy(t, keys[i], keys[j])
			}
		}
	}
	return m
}

// worldSizeDistLegacy is the pre-kernel WorldSizeDist: one untruncated
// recursive univariate evaluation.
func worldSizeDistLegacy(t *andxor.Tree) Poly {
	return Eval1(t, func(int, types.Leaf) int { return 1 }, -1).Trim(0)
}
