package genfunc

import (
	"consensus/internal/andxor"
	"consensus/internal/types"
)

// Legacy reference implementations of the batched statistics, built
// directly on the recursive evaluators Eval1/Eval2 exactly as the package
// computed them before the compiled incremental kernel.  The differential
// tests pin the kernel to these within 1e-12.

// ranksLegacy is the pre-kernel Ranks: one full recursive bivariate
// evaluation per leaf alternative.
func ranksLegacy(t *andxor.Tree, k int) (*RankDist, error) {
	if k < 1 {
		return nil, errRankCutoff(k)
	}
	if err := ValidateScores(t); err != nil {
		return nil, err
	}
	leaves := t.LeafAlternatives()
	rd := &RankDist{
		K:    k,
		keys: t.Keys(),
		eq:   make(map[string][]float64, len(t.Keys())),
		le:   make(map[string][]float64, len(t.Keys())),
	}
	for _, key := range rd.keys {
		rd.eq[key] = make([]float64, k+1)
	}
	for a, alt := range leaves {
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if i == a {
				return 0, 1
			}
			if l.Key != alt.Key && l.Score > alt.Score {
				return 1, 0
			}
			return 0, 0
		}, k-1, 1)
		dist := rd.eq[alt.Key]
		for j := 1; j <= k; j++ {
			dist[j] += f.Coeff(j-1, 1)
		}
	}
	for _, key := range rd.keys {
		le := make([]float64, k+1)
		acc := 0.0
		for i := 1; i <= k; i++ {
			acc += rd.eq[key][i]
			le[i] = acc
		}
		rd.le[key] = le
	}
	return rd, nil
}

// precedenceLegacy is the pre-kernel Precedence: one full recursive
// evaluation per alternative of keyI.
func precedenceLegacy(t *andxor.Tree, keyI, keyJ string) float64 {
	if keyI == keyJ {
		return 0
	}
	total := 0.0
	for a, alt := range t.LeafAlternatives() {
		if alt.Key != keyI {
			continue
		}
		score := alt.Score
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if i == a {
				return 0, 1
			}
			if l.Key == keyJ && l.Score > score {
				return 1, 0
			}
			return 0, 0
		}, 0, 1)
		total += f.Coeff(0, 1)
	}
	return total
}

// precedenceMatrixLegacy is the pre-kernel PrecedenceMatrix: one
// precedenceLegacy call per ordered key pair.
func precedenceMatrixLegacy(t *andxor.Tree, keys []string) [][]float64 {
	m := make([][]float64, len(keys))
	for i := range keys {
		m[i] = make([]float64, len(keys))
		for j := range keys {
			if i != j {
				m[i][j] = precedenceLegacy(t, keys[i], keys[j])
			}
		}
	}
	return m
}

// worldSizeDistLegacy is the pre-kernel WorldSizeDist: one untruncated
// recursive univariate evaluation.
func worldSizeDistLegacy(t *andxor.Tree) Poly {
	return Eval1(t, func(int, types.Leaf) int { return 1 }, -1).Trim(0)
}
