package genfunc

import (
	"consensus/internal/andxor"
)

// RanksParallel computes the same rank distribution as Ranks with the
// compiled kernel's score-ordered batch split into contiguous score-range
// shards, one worker and one evaluation arena per shard.  workers <= 0
// selects GOMAXPROCS.  The result is deterministic and bit-identical to
// Ranks: every arena value is a pure function of the leaf assignment (not
// of the update history), and per-key contributions are merged in leaf
// order, not completion order.
func RanksParallel(t *andxor.Tree, k, workers int) (*RankDist, error) {
	return compiled(t).RanksParallel(k, workers)
}
