package genfunc

import (
	"runtime"
	"sync"

	"consensus/internal/andxor"
	"consensus/internal/types"
)

// RanksParallel computes the same rank distribution as Ranks using a
// worker pool: the per-alternative generating functions are independent,
// so the O(n^2 k) work parallelizes embarrassingly across leaves.
// workers <= 0 selects GOMAXPROCS.  The result is deterministic and
// bit-identical to Ranks (per-key contributions are accumulated in leaf
// order, not completion order).
func RanksParallel(t *andxor.Tree, k, workers int) (*RankDist, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return Ranks(t, k)
	}
	if k < 1 {
		return nil, errRankCutoff(k)
	}
	if err := ValidateScores(t); err != nil {
		return nil, err
	}
	leaves := t.LeafAlternatives()
	// Each leaf's contribution: dist[j-1] = Pr(alternative ranked j-th).
	contrib := make([][]float64, len(leaves))
	var wg sync.WaitGroup
	next := make(chan int, len(leaves))
	for a := range leaves {
		next <- a
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range next {
				alt := leaves[a]
				f := Eval2(t, func(i int, l types.Leaf) (int, int) {
					if i == a {
						return 0, 1
					}
					if l.Key != alt.Key && l.Score > alt.Score {
						return 1, 0
					}
					return 0, 0
				}, k-1, 1)
				row := make([]float64, k)
				for j := 1; j <= k; j++ {
					row[j-1] = f.Coeff(j-1, 1)
				}
				contrib[a] = row
			}
		}()
	}
	wg.Wait()

	rd := &RankDist{
		K:    k,
		keys: t.Keys(),
		eq:   make(map[string][]float64, len(t.Keys())),
		le:   make(map[string][]float64, len(t.Keys())),
	}
	for _, key := range rd.keys {
		rd.eq[key] = make([]float64, k+1)
	}
	for a, alt := range leaves {
		dist := rd.eq[alt.Key]
		for j := 1; j <= k; j++ {
			dist[j] += contrib[a][j-1]
		}
	}
	for _, key := range rd.keys {
		le := make([]float64, k+1)
		acc := 0.0
		for i := 1; i <= k; i++ {
			acc += rd.eq[key][i]
			le[i] = acc
		}
		rd.le[key] = le
	}
	return rd, nil
}
