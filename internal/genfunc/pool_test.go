package genfunc

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/types"
	"consensus/internal/workload"
)

// TestCompiledProgramMemoized pins the package-level weak program cache:
// every package-level evaluator resolves the same tree to the same
// compiled Program instead of recompiling per call.
func TestCompiledProgramMemoized(t *testing.T) {
	tr := testTree(1, 3, 12, 2)
	p1 := compiled(tr)
	p2 := compiled(tr)
	if p1 != p2 {
		t.Fatal("compiled(t) returned two different programs for one tree")
	}
	tr2 := testTree(1, 3, 12, 2) // equal shape, distinct object
	if compiled(tr2) == p1 {
		t.Fatal("distinct trees shared one cached program")
	}
}

// TestArenaPoolReuse pins the arena pool: releasing an arena makes the
// next acquisition of the same shape reuse it (no new allocation), while
// a different shape gets its own arena; and a recycled arena starts from
// the reset state even when released mid-evaluation.
func TestArenaPoolReuse(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation pinning is meaningless")
	}
	p := compiled(testTree(0, 9, 16, 2))
	ar := p.acquireArena(4, 1)
	p.releaseArena(ar)
	if got := p.acquireArena(4, 1); got != ar {
		t.Fatal("same-shape acquire did not reuse the pooled arena")
	}
	other := p.acquireArena(0, 1)
	if other == ar {
		t.Fatal("different-shape acquire returned the wrong pool's arena")
	}
	// Dirty an arena, release it mid-flight, and check the next user sees
	// the clean all-zero evaluation.
	ar.setLeaf(0, 1, 0)
	ar.setLeaf(1, 0, 1)
	ar.flush()
	p.releaseArena(ar)
	re := p.acquireArena(4, 1)
	for i := range re.xdeg {
		if re.xdeg[i] != 0 || re.ydeg[i] != 0 {
			t.Fatalf("recycled arena leaf %d carries assignment (%d, %d)", i, re.xdeg[i], re.ydeg[i])
		}
	}
	if re.marked != 0 || re.anyDirty {
		t.Fatalf("recycled arena not reset: marked=%d anyDirty=%v", re.marked, re.anyDirty)
	}
}

// TestArenaResetBitIdentical pins that both reset paths (incremental
// path re-evaluation and the snapshot copy) restore bit-identical state,
// by comparing full batched results computed on a fresh arena versus a
// heavily- and lightly-marked recycled one.
func TestArenaResetBitIdentical(t *testing.T) {
	tr := testTree(2, 11, 20, 3)
	k := 6
	want, err := Ranks(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	// Repeated evaluations run on pooled arenas left in the fully marked
	// end state (snapshot reset) — results must not drift by a bit.
	for trial := 0; trial < 3; trial++ {
		got, err := Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range tr.Keys() {
			for i := 1; i <= k; i++ {
				if got.PrEq(key, i) != want.PrEq(key, i) {
					t.Fatalf("trial %d: pooled re-evaluation changed PrEq(%q, %d)", trial, key, i)
				}
			}
		}
	}
	// Lightly marked arena: dirty a couple of leaves, release, re-run.
	p := compiled(tr)
	ar := p.acquireArena(k-1, 1)
	ar.setLeaf(0, 1, 0)
	ar.flush()
	p.releaseArena(ar)
	got, err := Ranks(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range tr.Keys() {
		for i := 1; i <= k; i++ {
			if got.PrEq(key, i) != want.PrEq(key, i) {
				t.Fatalf("incremental reset changed PrEq(%q, %d)", key, i)
			}
		}
	}
}

// TestPooledRanksSteadyStateAllocs pins the allocation profile of a warm
// package-level Ranks call: with the program cached and the arena and
// contribution rows pooled, a batch allocates only the returned RankDist
// (one struct and two flat rows — no per-key maps or slices).
func TestPooledRanksSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation pinning is meaningless")
	}
	tr := workload.BID(rand.New(rand.NewSource(31)), 48, 2)
	k := 8
	if _, err := Ranks(tr, k); err != nil { // warm program + pools
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Ranks(tr, k); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Fatalf("warm Ranks allocates %v objects per run, want <= 3 (RankDist + eq + le)", allocs)
	}
}

// TestPooledWorldSizeDistAllocs pins the pooled one-pass world-size
// evaluation: a warm call allocates only the returned polynomial.
func TestPooledWorldSizeDistAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector; allocation pinning is meaningless")
	}
	tr := workload.BID(rand.New(rand.NewSource(33)), 64, 2)
	_ = WorldSizeDist(tr)
	allocs := testing.AllocsPerRun(20, func() { _ = WorldSizeDist(tr) })
	if allocs > 1 {
		t.Fatalf("warm WorldSizeDist allocates %v objects per run, want <= 1 (the result)", allocs)
	}
}

// TestExpectedRankMatchesLegacy pins the compiled dual-number kernel to
// the legacy evaluation (full rank distribution + one untruncated
// recursive pass per key) across tree families and sizes.
func TestExpectedRankMatchesLegacy(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		for _, n := range []int{1, 2, 7, 24, 40} {
			tr := testTree(shape, 17*shape+n, n, 3)
			got, err := ExpectedRank(tr)
			if err != nil {
				t.Fatal(err)
			}
			want, err := expectedRankLegacy(tr)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range tr.Keys() {
				// Relative 1e-12: E[rank] scales with n, so the absolute
				// tolerance scales with the value.
				tol := kernelTol * math.Max(1, math.Abs(want[key]))
				if d := math.Abs(got[key] - want[key]); d > tol {
					t.Fatalf("shape=%d n=%d E[rank(%s)]: compiled %v legacy %v (diff %g)",
						shape, n, key, got[key], want[key], d)
				}
			}
		}
	}
}

// tieTree builds an independent-tuple tree where the first nTied tuples
// share one score (and co-occur with positive probability, so ranking is
// ill-defined) and the rest have distinct scores.
func tieTree(n, nTied int) *andxor.Tree {
	children := make([]*andxor.Node, n)
	for i := range children {
		score := float64(i)
		if i < nTied {
			score = 1000
		}
		children[i] = andxor.NewOr(
			[]*andxor.Node{andxor.NewLeaf(types.Leaf{Key: fmt.Sprintf("t%02d", i), Score: score})},
			[]float64{0.5})
	}
	return andxor.MustNew(andxor.NewAnd(children...))
}

// TestValidateScoresDeterministicPair pins the satellite fix: the
// offending pair reported for a tied, co-occurring score group is stable
// across runs (the legacy implementation ranged over a float64-keyed map,
// so the pair — and the error text — changed run to run), and is the
// first pair in score-descending, leaf-index-ascending order.
func TestValidateScoresDeterministicPair(t *testing.T) {
	first := ValidateScores(tieTree(8, 4))
	if first == nil {
		t.Fatal("tied co-occurring scores not rejected")
	}
	for trial := 0; trial < 10; trial++ {
		// Fresh tree objects so each run recompiles and revalidates.
		if got := ValidateScores(tieTree(8, 4)); got == nil || got.Error() != first.Error() {
			t.Fatalf("offending pair unstable: run 0 %q, run %d %q", first, trial, got)
		}
	}
	// The reported pair is the lowest-indexed one of the group.
	for _, leaf := range []string{"t00", "t01"} {
		if !strings.Contains(first.Error(), leaf) {
			t.Fatalf("error %q does not name the first tied pair (%s)", first, leaf)
		}
	}
}

// TestValidateScoresMatchesLegacy pins the batched co-occurrence check's
// verdict to the legacy per-pair recursive evaluation across families,
// including trees with benign (mutually exclusive) ties.
func TestValidateScoresMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		tr := testTree(trial, 1000+trial, n, 3)
		got := ValidateScores(tr)
		want := validateScoresLegacy(tr)
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: compiled verdict %v, legacy %v (tree %s)", trial, got, want, tr)
		}
	}
	// Mutually exclusive ties (alternatives of one key) stay accepted.
	tr := workload.BID(rng, 6, 3)
	if err := ValidateScores(tr); err != nil {
		t.Fatalf("BID tree rejected: %v", err)
	}
}

// TestRankDistDistCopy pins that Dist hands out an independent copy of
// the flat row (mutating it must not corrupt the shared distribution).
func TestRankDistDistCopy(t *testing.T) {
	tr := testTree(1, 5, 6, 2)
	rd, err := Ranks(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	key := tr.Keys()[0]
	d := rd.Dist(key)
	orig := rd.PrEq(key, 1)
	d[0] = math.Inf(1)
	if rd.PrEq(key, 1) != orig {
		t.Fatal("mutating Dist's copy corrupted the shared distribution")
	}
	if rd.Dist("no-such-key") != nil {
		t.Fatal("unknown key should yield nil")
	}
}

// TestExpectedRankSingleTuple covers the smallest tree the compiled
// sweeps handle.
func TestExpectedRankSingleTuple(t *testing.T) {
	if _, err := ExpectedRank(testTree(0, 1, 1, 1)); err != nil {
		t.Fatalf("single-tuple tree: %v", err)
	}
}
