package genfunc

import (
	"runtime"
	"sort"
	"sync"
	"weak"

	"consensus/internal/andxor"
	"consensus/internal/types"
)

// This file implements the compiled evaluation kernel: a Tree is flattened
// once into a postorder instruction array (Program) and every rank /
// precedence / size statistic is then computed by (re-)evaluating
// instructions over a preallocated arena instead of recursing over the
// pointer tree with per-node heap allocations.
//
// Two compilation choices make incremental evaluation cheap:
//
//   - Fan-ins are binarized: an and-node with c children becomes a balanced
//     tree of 2-ary product instructions, and an or-node a balanced tree of
//     2-ary weighted-sum instructions (the stop probability rides on the
//     final sum).  A leaf-to-root path therefore has length O(depth·log
//     fan-in), so re-evaluating the path after a single leaf change costs
//     O(depth·log(fan-in)·k²) instead of a full-tree pass.
//
//   - Every instruction's value is a pure function of its children's
//     current values: re-evaluation rewrites the node's arena slot from
//     scratch, never updating in place.  The root polynomial therefore
//     depends only on the current leaf assignment, not on the update
//     history, which keeps the incremental kernel bit-deterministic (and
//     makes the sharded parallel kernel merge bit-identical to the
//     sequential one).

// opKind discriminates the three compiled instruction types.
type opKind uint8

const (
	// opLeaf loads the monomial x^a y^b of the leaf's current assignment.
	opLeaf opKind = iota
	// opMul computes val(a) * val(b), truncated at the arena caps.
	opMul
	// opSum computes wa*val(a) + wb*val(b) + c (b may be absent).
	opSum
)

// inst is one compiled instruction.  Children always precede parents in
// the instruction array (postorder), and the root is the last instruction.
type inst struct {
	a, b   int32   // child instruction indices; b == -1 for unary opSum
	parent int32   // parent instruction index; -1 at the root
	wa, wb float64 // opSum weights (or-edge probabilities)
	c      float64 // opSum constant term (or-node stop probability)
	leaf   int32   // opLeaf: leaf index in DFS order
	op     opKind
}

// Program is a tree compiled for the incremental kernel, together with the
// leaf metadata (keys, scores, score order) the batched rank and precedence
// kernels need.  A Program's compiled state is immutable and safe for
// concurrent use; per-evaluation state lives in arenas, which the Program
// recycles through per-shape pools so warm evaluations allocate nothing.
// A Program deliberately holds no reference back to its source tree, so
// the package-level weak-keyed program cache cannot keep dead trees alive.
type Program struct {
	insts []inst

	leaves   []types.Leaf // DFS order, parallel to Tree.Leaves
	leafNode []int32      // leaf index -> instruction index
	keys     []string     // distinct keys, sorted (as Tree.Keys)
	keyID    []int32      // leaf index -> index into keys
	keyIdx   map[string]int32

	// Weight placement of leaf-adjacent or-edges, recorded at compile time
	// for the delta path (Apply in delta.go): leafEdge[l] is the opSum
	// instruction carrying leaf l's edge probability (-1 when the leaf's
	// parent is not an or-node), leafEdgeB whether it sits in wb rather
	// than wa, and leafGroup[l] the group's final sum instruction — the one
	// whose constant term c holds the or-node's stop probability.  The
	// binarization keeps a carried odd term's weight attached until the
	// term is consumed, so each edge weight appears in exactly one
	// instruction.
	leafEdge  []int32
	leafEdgeB []bool
	leafGroup []int32

	// byScore lists leaf indices by strictly decreasing score (ties broken
	// by ascending leaf index); altsOfKey[kid] lists the leaves of one key
	// in the same order.  Both drive the moving-threshold kernels.
	byScore   []int32
	altsOfKey [][]int32

	// maxPathLen is the longest leaf-to-root instruction path (inclusive
	// of both ends): the worst-case number of re-evaluations one leaf
	// change triggers.  Cost models use it to price incremental updates.
	maxPathLen int

	// Arena and scratch recycling.  pools holds one sync.Pool of arenas
	// per (xcap, ycap) shape; scratch recycles float64 buffers (rank
	// contribution rows).  Both make warm evaluations — repeated engine
	// queries, RanksParallel worker shards, precedence sweeps — steady-
	// state allocation-free.  The pools live on the Program, so an engine
	// re-registering a tree name drops the whole pool family with the old
	// generation's Program (no cross-generation arena reuse is possible by
	// construction).
	poolMu  sync.Mutex
	pools   map[[2]int]*sync.Pool
	scratch sync.Pool

	// valMu/valDone cache ValidateScores' verdict: score validity is a
	// property of the tree's leaves and weights alone, so repeated batched
	// evaluations (every Ranks call) check it once.  Unlike a sync.Once
	// the guard is resettable: a weight mutation (Apply) can change which
	// tied alternatives co-occur, so the delta path invalidates the
	// verdict.
	valMu   sync.Mutex
	valDone bool
	valErr  error

	// sizeOnce caches the static per-instruction polynomial extents of the
	// untruncated world-size evaluation (they depend only on the tree
	// shape, not on any assignment).
	sizeOnce sync.Once
	sizeLens []int32
	sizeOffs []int32

	// sizeMu guards the persistent world-size evaluation state: sizeBuf
	// holds the last full bottom-up evaluation (sizeOffs layout), and
	// sizeDirty lists the instructions whose weights changed since it was
	// filled.  The next WorldSizeDist re-evaluates only the dirty
	// instructions and their ancestors (see kernel.go), which is what lets
	// the engine repair a cached world-size distribution through a
	// mutation at dirty-path cost instead of a full pass.
	sizeMu    sync.Mutex
	sizeBuf   []float64
	sizeDirty []int32
}

// progCache memoizes Compile per source tree, weakly keyed so the cache
// never extends a tree's lifetime: the cleanup drops the entry when the
// tree is collected (the cached Program holds no tree reference, so no
// cycle keeps either alive).  The package-level evaluators (Ranks,
// Precedence, ExpectedRank, ValidateScores, WorldSizeDist) compile each
// distinct tree once instead of once per call; the engine additionally
// pins programs per registered generation.
var progCache sync.Map // weak.Pointer[andxor.Tree] -> *Program

// compiled returns the memoized Program of t, compiling on first use.
func compiled(t *andxor.Tree) *Program {
	wp := weak.Make(t)
	if v, ok := progCache.Load(wp); ok {
		return v.(*Program)
	}
	p := Compile(t)
	if v, raced := progCache.LoadOrStore(wp, p); raced {
		return v.(*Program)
	}
	runtime.AddCleanup(t, func(key weak.Pointer[andxor.Tree]) {
		progCache.Delete(key)
	}, wp)
	return p
}

// acquireArena returns a pooled arena with the given caps, reset to the
// all-zero leaf assignment, allocating only when the pool is empty.
func (p *Program) acquireArena(xcap, ycap int) *arena {
	key := [2]int{xcap, ycap}
	p.poolMu.Lock()
	pool := p.pools[key]
	if pool == nil {
		if p.pools == nil {
			p.pools = make(map[[2]int]*sync.Pool)
		}
		pool = &sync.Pool{}
		p.pools[key] = pool
	}
	p.poolMu.Unlock()
	if v := pool.Get(); v != nil {
		ar := v.(*arena)
		ar.reset()
		return ar
	}
	return newArena(p, xcap, ycap)
}

// releaseArena returns ar to its shape's pool for reuse by a later
// evaluation (possibly on another goroutine).
func (p *Program) releaseArena(ar *arena) {
	p.poolMu.Lock()
	pool := p.pools[[2]int{ar.xcap, ar.ycap}]
	p.poolMu.Unlock()
	if pool != nil {
		pool.Put(ar)
	}
}

// floatBuf is a pooled scratch buffer; pooling the struct pointer (not the
// raw slice) keeps Put/Get free of interface-boxing allocations.
type floatBuf struct{ s []float64 }

// acquireFloats returns a pooled scratch buffer whose slice is resized to
// length n and zeroed.
func (p *Program) acquireFloats(n int) *floatBuf {
	if v := p.scratch.Get(); v != nil {
		fb := v.(*floatBuf)
		if cap(fb.s) >= n {
			fb.s = fb.s[:n]
			clear(fb.s)
			return fb
		}
	}
	return &floatBuf{s: make([]float64, n)}
}

// releaseFloats returns a scratch buffer to the pool.
func (p *Program) releaseFloats(fb *floatBuf) {
	p.scratch.Put(fb)
}

// Compile flattens t into a Program.  Compilation is O(tree size) and is
// meant to be done once per tree (the engine caches it per registered
// tree); all per-query work then runs on arenas.
func Compile(t *andxor.Tree) *Program {
	leaves := t.LeafAlternatives()
	keys := t.Keys()
	p := &Program{
		leaves:   leaves,
		leafNode: make([]int32, 0, len(leaves)),
		keys:     keys,
		keyID:    make([]int32, 0, len(leaves)),
		keyIdx:   make(map[string]int32, len(keys)),
	}
	keyIdx := p.keyIdx
	for i, k := range keys {
		keyIdx[k] = int32(i)
	}
	var compile func(n *andxor.Node) int32
	compile = func(n *andxor.Node) int32 {
		switch n.Kind() {
		case andxor.KindLeaf:
			l := n.Leaf()
			id := p.emit(inst{op: opLeaf, a: -1, b: -1, leaf: int32(len(p.leafNode))})
			p.leafNode = append(p.leafNode, id)
			p.keyID = append(p.keyID, keyIdx[l.Key])
			p.leafEdge = append(p.leafEdge, -1)
			p.leafEdgeB = append(p.leafEdgeB, false)
			p.leafGroup = append(p.leafGroup, -1)
			return id
		case andxor.KindOr:
			children := n.Children()
			probs := n.Probs()
			terms := make([]sumTerm, len(children))
			for i, c := range children {
				terms[i] = sumTerm{node: compile(c), w: probs[i], src: -1}
				if c.Kind() == andxor.KindLeaf {
					terms[i].src = int32(len(p.leafNode) - 1)
				}
			}
			srcs := make([]int32, 0, len(terms))
			for _, tm := range terms {
				if tm.src >= 0 {
					srcs = append(srcs, tm.src)
				}
			}
			root := p.reduceSum(terms, n.StopProb())
			for _, s := range srcs {
				p.leafGroup[s] = root
			}
			return root
		default: // KindAnd
			ids := make([]int32, len(n.Children()))
			for i, c := range n.Children() {
				ids[i] = compile(c)
			}
			return p.reduceMul(ids)
		}
	}
	compile(t.Root())

	// Parent links, for dirty-path propagation.
	for i := range p.insts {
		p.insts[i].parent = -1
	}
	for i, in := range p.insts {
		if in.op == opLeaf {
			continue
		}
		p.insts[in.a].parent = int32(i)
		if in.b >= 0 {
			p.insts[in.b].parent = int32(i)
		}
	}

	// Longest leaf-to-root path: instructions are postorder, so a single
	// reverse sweep propagates path lengths root-down.
	pathLen := make([]int32, len(p.insts))
	pathLen[len(p.insts)-1] = 1
	for i := len(p.insts) - 1; i >= 0; i-- {
		in := p.insts[i]
		if in.op == opLeaf {
			if int(pathLen[i]) > p.maxPathLen {
				p.maxPathLen = int(pathLen[i])
			}
			continue
		}
		pathLen[in.a] = pathLen[i] + 1
		if in.b >= 0 {
			pathLen[in.b] = pathLen[i] + 1
		}
	}

	// Score orders for the moving-threshold kernels.
	p.byScore = make([]int32, len(leaves))
	for i := range p.byScore {
		p.byScore[i] = int32(i)
	}
	sort.Slice(p.byScore, func(a, b int) bool {
		i, j := p.byScore[a], p.byScore[b]
		if leaves[i].Score != leaves[j].Score {
			return leaves[i].Score > leaves[j].Score
		}
		return i < j
	})
	p.altsOfKey = make([][]int32, len(keys))
	for _, li := range p.byScore {
		kid := p.keyID[li]
		p.altsOfKey[kid] = append(p.altsOfKey[kid], li)
	}
	return p
}

// NumLeaves returns the number of tuple alternatives in the compiled tree.
func (p *Program) NumLeaves() int { return len(p.leaves) }

// MaxPathLen returns the longest leaf-to-root instruction path — the
// worst-case number of instruction re-evaluations a single leaf change
// triggers.  Balanced trees sit near log2(NumLeaves); degenerate chains
// approach NumLeaves.  Backend choosers use it to price the incremental
// kernel honestly on deep trees.
func (p *Program) MaxPathLen() int { return p.maxPathLen }

func (p *Program) emit(in inst) int32 {
	p.insts = append(p.insts, in)
	return int32(len(p.insts) - 1)
}

// sumTerm is one weighted operand of an or-node reduction; src is the leaf
// index whose edge probability the weight is (or -1 for internal operands),
// threaded through the levels so the weight's final instruction placement
// can be recorded for the delta path.
type sumTerm struct {
	node int32
	w    float64
	src  int32
}

// recordEdge notes that leaf src's edge probability lives in instruction
// id's wa (or wb when bSide) slot.
func (p *Program) recordEdge(src, id int32, bSide bool) {
	if src >= 0 {
		p.leafEdge[src] = id
		p.leafEdgeB[src] = bSide
	}
}

// reduceSum emits a balanced binary tree of weighted sums computing
// stop + Σ w_i·val(node_i); the stop constant is folded into the final sum
// so no extra instruction is spent on it.  A carried odd term keeps its
// weight (and src) until a later level consumes it.
func (p *Program) reduceSum(terms []sumTerm, stop float64) int32 {
	if len(terms) == 1 {
		id := p.emit(inst{op: opSum, a: terms[0].node, b: -1, wa: terms[0].w, c: stop})
		p.recordEdge(terms[0].src, id, false)
		return id
	}
	for len(terms) > 2 {
		level := make([]sumTerm, 0, (len(terms)+1)/2)
		for i := 0; i+1 < len(terms); i += 2 {
			id := p.emit(inst{op: opSum, a: terms[i].node, b: terms[i+1].node, wa: terms[i].w, wb: terms[i+1].w})
			p.recordEdge(terms[i].src, id, false)
			p.recordEdge(terms[i+1].src, id, true)
			level = append(level, sumTerm{node: id, w: 1, src: -1})
		}
		if len(terms)%2 == 1 {
			level = append(level, terms[len(terms)-1])
		}
		terms = level
	}
	id := p.emit(inst{op: opSum, a: terms[0].node, b: terms[1].node, wa: terms[0].w, wb: terms[1].w, c: stop})
	p.recordEdge(terms[0].src, id, false)
	p.recordEdge(terms[1].src, id, true)
	return id
}

// reduceMul emits a balanced binary tree of products over the operands.
// A single operand needs no instruction: the and-node is its child.
func (p *Program) reduceMul(ids []int32) int32 {
	for len(ids) > 1 {
		level := make([]int32, 0, (len(ids)+1)/2)
		for i := 0; i+1 < len(ids); i += 2 {
			level = append(level, p.emit(inst{op: opMul, a: ids[i], b: ids[i+1]}))
		}
		if len(ids)%2 == 1 {
			level = append(level, ids[len(ids)-1])
		}
		ids = level
	}
	return ids[0]
}
