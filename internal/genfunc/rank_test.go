package genfunc

import (
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/exact"
	"consensus/internal/numeric"
	"consensus/internal/types"
	"consensus/internal/workload"
)

func TestRanksRejectsBadInput(t *testing.T) {
	tr := andxor.Figure1i()
	if _, err := Ranks(tr, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	clash, err := andxor.BID([]andxor.Block{
		{Alternatives: []types.Leaf{{Key: "a", Score: 1}}, Probs: []float64{0.5}},
		{Alternatives: []types.Leaf{{Key: "b", Score: 1}}, Probs: []float64{0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ranks(clash, 1); err == nil {
		t.Fatal("cross-key score ties must be rejected")
	}
}

func TestRanksAcceptsMutuallyExclusiveTies(t *testing.T) {
	// Two alternative worlds sharing scores across keys: the tying leaves
	// can never co-occur, so ranking is well-defined and must be accepted.
	w1 := types.MustWorld(types.Leaf{Key: "a", Score: 2}, types.Leaf{Key: "b", Score: 1})
	w2 := types.MustWorld(types.Leaf{Key: "b", Score: 2}, types.Leaf{Key: "a", Score: 1})
	tr, err := andxor.FromWorlds([]andxor.WeightedWorld{
		{World: w1, Prob: 0.7},
		{World: w2, Prob: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := Ranks(tr, 2)
	if err != nil {
		t.Fatalf("mutually exclusive ties must be accepted: %v", err)
	}
	if !numeric.AlmostEqual(rd.PrEq("a", 1), 0.7, 1e-12) {
		t.Fatalf("Pr(r(a)=1) = %g, want 0.7", rd.PrEq("a", 1))
	}
	// But a genuine co-occurring tie must still be rejected.
	clash, err := andxor.BID([]andxor.Block{
		{Alternatives: []types.Leaf{{Key: "x", Score: 5}}, Probs: []float64{0.5}},
		{Alternatives: []types.Leaf{{Key: "y", Score: 5}}, Probs: []float64{0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Ranks(clash, 1); err == nil {
		t.Fatal("co-occurring cross-key tie must be rejected")
	}
}

func TestRanksFigure1iii(t *testing.T) {
	tr := andxor.Figure1iii()
	rd, err := Ranks(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	// pw1 (0.3): t3=6 > t2=5 > t1=1 ; pw2 (0.3): t3=9 > t1=7 > t4=0 ;
	// pw3 (0.4): t2=8 > t4=4 > t5=3.
	checks := []struct {
		key  string
		rank int
		want float64
	}{
		{"t3", 1, 0.6}, {"t2", 1, 0.4}, {"t2", 2, 0.3},
		{"t1", 2, 0.3}, {"t1", 3, 0.3}, {"t4", 2, 0.4},
		{"t4", 3, 0.3}, {"t5", 3, 0.4}, {"t5", 1, 0},
	}
	for _, c := range checks {
		if got := rd.PrEq(c.key, c.rank); !numeric.AlmostEqual(got, c.want, 1e-12) {
			t.Errorf("Pr(r(%s)=%d) = %g, want %g", c.key, c.rank, got, c.want)
		}
	}
	if got := rd.PrTopK("t1"); !numeric.AlmostEqual(got, 0.6, 1e-12) {
		t.Errorf("Pr(r(t1)<=3) = %g, want 0.6", got)
	}
}

// The heart of the validation: rank distributions computed via truncated
// generating functions must equal enumeration on random trees of every
// model class.
func TestRanksMatchEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	trees := []*andxor.Tree{
		workload.Independent(rng, 6),
		workload.BID(rng, 5, 3),
		workload.Nested(rng, 6, 2),
		workload.Nested(rng, 7, 3),
		andxor.Figure1i(),
		andxor.Figure1iii(),
	}
	for ti, tr := range trees {
		k := 3
		rd, err := Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		ws := exact.MustEnumerate(tr)
		for _, key := range tr.Keys() {
			for i := 1; i <= k; i++ {
				want := exact.RankProb(ws, key, i)
				if got := rd.PrEq(key, i); !numeric.AlmostEqual(got, want, 1e-9) {
					t.Fatalf("tree %d key %s rank %d: genfunc %g enum %g", ti, key, i, got, want)
				}
				wantLE := exact.RankAtMostProb(ws, key, i)
				if got := rd.PrLE(key, i); !numeric.AlmostEqual(got, wantLE, 1e-9) {
					t.Fatalf("tree %d key %s rank<=%d: genfunc %g enum %g", ti, key, i, got, wantLE)
				}
			}
		}
	}
}

func TestPrecedenceMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(5), 2)
		ws := exact.MustEnumerate(tr)
		keys := tr.Keys()
		for _, ki := range keys {
			for _, kj := range keys {
				got := Precedence(tr, ki, kj)
				want := exact.ExpectedOver(ws, func(w *types.World) float64 {
					li, iok := w.Lookup(ki)
					if !iok {
						return 0
					}
					lj, jok := w.Lookup(kj)
					if ki == kj {
						return 0
					}
					if !jok || lj.Score < li.Score {
						return 1
					}
					return 0
				})
				if !numeric.AlmostEqual(got, want, 1e-9) {
					t.Fatalf("trial %d Pr(r(%s)<r(%s)): genfunc %g enum %g", trial, ki, kj, got, want)
				}
			}
		}
	}
}

func TestPrecedenceMatrixShape(t *testing.T) {
	tr := andxor.Figure1iii()
	keys := tr.Keys()
	m := PrecedenceMatrix(tr, keys)
	if len(m) != len(keys) {
		t.Fatal("matrix shape wrong")
	}
	for i := range m {
		if m[i][i] != 0 {
			t.Fatal("diagonal must be zero")
		}
	}
	// In Figure 1(ii): t3 beats t2 in pw1 (6>5) and pw2 (t2 absent) => 0.6.
	i3, i2 := indexOf(keys, "t3"), indexOf(keys, "t2")
	if !numeric.AlmostEqual(m[i3][i2], 0.6, 1e-12) {
		t.Fatalf("Pr(t3<t2) = %g, want 0.6", m[i3][i2])
	}
}

func indexOf(xs []string, x string) int {
	for i, v := range xs {
		if v == x {
			return i
		}
	}
	return -1
}

func TestExpectedRankMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(4), 2)
		got, err := ExpectedRank(tr)
		if err != nil {
			t.Fatal(err)
		}
		ws := exact.MustEnumerate(tr)
		for _, key := range tr.Keys() {
			want := exact.ExpectedOver(ws, func(w *types.World) float64 {
				l, ok := w.Lookup(key)
				if !ok {
					return float64(w.Len())
				}
				r := 1
				for _, o := range w.Leaves() {
					if o.Key != key && o.Score > l.Score {
						r++
					}
				}
				return float64(r)
			})
			if !numeric.AlmostEqual(got[key], want, 1e-9) {
				t.Fatalf("trial %d E[rank(%s)]: genfunc %g enum %g (tree %s)", trial, key, got[key], want, tr)
			}
		}
	}
}

// Property: for every key, sum_i Pr(r(t)=i) over all i = marginal
// probability of the key, and PrLE is monotone.
func TestRankDistributionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 20; trial++ {
		tr := workload.BID(rng, 2+rng.Intn(6), 3)
		n := len(tr.Keys())
		rd, err := Ranks(tr, n) // k = n captures the full distribution
		if err != nil {
			t.Fatal(err)
		}
		marg := tr.KeyMarginals()
		for _, key := range tr.Keys() {
			if !numeric.AlmostEqual(rd.PrLE(key, n), marg[key], 1e-9) {
				t.Fatalf("sum of rank probs %g != marginal %g for %s", rd.PrLE(key, n), marg[key], key)
			}
			prev := 0.0
			for i := 1; i <= n; i++ {
				cur := rd.PrLE(key, i)
				if cur+1e-12 < prev {
					t.Fatalf("PrLE not monotone for %s", key)
				}
				prev = cur
			}
		}
	}
}
