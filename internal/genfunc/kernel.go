package genfunc

import (
	"math/bits"
	"runtime"
	"sync"
)

// This file holds the batched statistic kernels that run on compiled
// programs (see compile.go for the instruction model and arena.go for the
// evaluation arena).
//
// The batched rank kernel exploits that consecutive alternatives in
// descending-score order induce nearly identical leaf assignments: the
// y-mark moves, the handful of leaves whose score lies between the two
// thresholds cross into the x-marked region (each leaf crosses exactly
// once over the whole batch), and the same-key exclusions of the old and
// new alternative swap.  Every step therefore re-evaluates only a few
// root paths instead of the whole tree, turning n full-tree passes into
// O(n·depth·log(fan-in)) incremental path updates.
//
// All kernels draw their arenas and scratch rows from the Program's
// pools, so a warm Program (repeated engine queries, parallel shards)
// evaluates without heap allocations beyond the returned result.

// Ranks computes the same rank distribution as the package-level Ranks on
// the compiled program.  See Ranks for the statistic's definition and the
// validation contract.
func (p *Program) Ranks(k int) (*RankDist, error) {
	if k < 1 {
		return nil, errRankCutoff(k)
	}
	if err := p.ValidateScores(); err != nil {
		return nil, err
	}
	n := len(p.leaves)
	fb := p.acquireFloats(n * k)
	ar := p.acquireArena(k-1, 1)
	p.ranksRange(ar, k, 0, n, fb.s)
	p.releaseArena(ar)
	rd := p.assembleRankDist(k, fb.s)
	p.releaseFloats(fb)
	return rd, nil
}

// RanksParallel computes Ranks with the score-ordered alternative batch
// split into contiguous shards, one worker and one pooled arena per
// shard.  Because every instruction's value is a pure function of the
// current assignment, each shard reproduces exactly the coefficients the
// sequential kernel would, and the leaf-order merge makes the result
// bit-identical to Ranks regardless of worker count.
func (p *Program) RanksParallel(k, workers int) (*RankDist, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(p.leaves)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return p.Ranks(k)
	}
	if k < 1 {
		return nil, errRankCutoff(k)
	}
	if err := p.ValidateScores(); err != nil {
		return nil, err
	}
	fb := p.acquireFloats(n * k)
	contrib := fb.s
	var wg sync.WaitGroup
	base, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + base
		if w < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ar := p.acquireArena(k-1, 1)
			p.ranksRange(ar, k, lo, hi, contrib)
			p.releaseArena(ar)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	rd := p.assembleRankDist(k, contrib)
	p.releaseFloats(fb)
	return rd, nil
}

// RanksAll computes the rank distributions of several cutoffs with one
// shared sweep at the widest cutoff.  A truncated evaluation is a bitwise
// prefix of a wider one (the accumulation-order property pinned by
// TestRanksCutoffPrefixBitIdentical), so assembling each narrower
// distribution from the shared contribution rows is bit-identical to a
// direct Ranks/RanksParallel call at that cutoff.  The engine's mutation
// repair uses this to re-seed every resident cutoff for the price of the
// widest one.  Duplicate cutoffs are allowed; order is preserved.
func (p *Program) RanksAll(ks []int, workers int) ([]*RankDist, error) {
	if len(ks) == 0 {
		return nil, nil
	}
	kmax := ks[0]
	for _, k := range ks {
		if k < 1 {
			return nil, errRankCutoff(k)
		}
		if k > kmax {
			kmax = k
		}
	}
	if err := p.ValidateScores(); err != nil {
		return nil, err
	}
	n := len(p.leaves)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	fb := p.acquireFloats(n * kmax)
	contrib := fb.s
	if workers <= 1 {
		ar := p.acquireArena(kmax-1, 1)
		p.ranksRange(ar, kmax, 0, n, contrib)
		p.releaseArena(ar)
	} else {
		// The shard split must match RanksParallel's exactly: it depends
		// only on n and workers, so every per-alternative row here is the
		// row that a direct call at any of the cutoffs would compute.
		var wg sync.WaitGroup
		base, rem := n/workers, n%workers
		lo := 0
		for w := 0; w < workers; w++ {
			hi := lo + base
			if w < rem {
				hi++
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				ar := p.acquireArena(kmax-1, 1)
				p.ranksRange(ar, kmax, lo, hi, contrib)
				p.releaseArena(ar)
			}(lo, hi)
			lo = hi
		}
		wg.Wait()
	}
	out := make([]*RankDist, len(ks))
	for i, k := range ks {
		out[i] = p.assembleRankDistStride(k, kmax, contrib)
	}
	p.releaseFloats(fb)
	return out, nil
}

// ranksRange computes the per-alternative rank contributions for the
// score-order positions [lo, hi): contrib[a*k+j] = Pr(alternative a is
// present and ranked j+1), writing only rows owned by this range (shards
// write disjoint rows, so the slice may be shared without locking).  The
// arena must have caps (k-1, 1); beyond the arena and the output rows, a
// run allocates nothing, so reusing both across calls gives zero
// steady-state allocations.
func (p *Program) ranksRange(ar *arena, k, lo, hi int, contrib []float64) {
	ar.reset()
	cross := 0 // byScore positions < cross carry marks for the current threshold
	var prev int32 = -1
	var prevScore float64
	for t := lo; t < hi; t++ {
		a := p.byScore[t]
		s := p.leaves[a].Score
		kid := p.keyID[a]
		// The previous y-marked alternative falls back to its generic mark
		// (the crossing sweep below also covers it except on score ties).
		if prev >= 0 {
			ar.setGeneric(prev, s, kid)
		}
		// Leaves crossing the score threshold become x-marked unless they
		// share the current alternative's key.
		for cross < len(p.byScore) {
			b := p.byScore[cross]
			if p.leaves[b].Score <= s {
				break
			}
			ar.setGeneric(b, s, kid)
			cross++
		}
		// The previous alternative's same-key exclusions return to their
		// generic marks; the current key's higher-scored alternatives are
		// excluded from the x-marking (same-tuple alternatives are mutually
		// exclusive and never outrank each other).
		if prev >= 0 && p.keyID[prev] != kid {
			for _, b := range p.altsOfKey[p.keyID[prev]] {
				if p.leaves[b].Score <= prevScore {
					break
				}
				ar.setGeneric(b, s, kid)
			}
		}
		for _, b := range p.altsOfKey[kid] {
			if p.leaves[b].Score <= s {
				break
			}
			ar.setLeaf(b, 0, 0)
		}
		ar.setLeaf(a, 0, 1)
		ar.flush()
		// Copy the root's y¹ row directly: coefficients beyond its
		// effective length are zero.
		row := contrib[int(a)*k : int(a)*k+k]
		root := len(p.insts) - 1
		n := int(ar.lens[root*2+1])
		rootRow := ar.vals[root*ar.sz+ar.w : root*ar.sz+ar.w+n]
		copy(row, rootRow)
		clear(row[len(rootRow):])
		prev, prevScore = a, s
	}
}

// assembleRankDist folds per-alternative contributions into a RankDist,
// accumulating per key in DFS leaf order — the same accumulation order as
// the legacy evaluator, which keeps sequential and parallel results
// bit-identical.
func (p *Program) assembleRankDist(k int, contrib []float64) *RankDist {
	return p.assembleRankDistStride(k, k, contrib)
}

// assembleRankDistStride folds contribution rows laid out with the given
// row stride (>= k) into a cutoff-k RankDist, reading only each row's
// k-prefix.  With stride == k this is the plain assembly; a wider stride
// lets RanksAll assemble several cutoffs from one shared sweep, relying on
// the truncation-prefix property for the narrower rows.
func (p *Program) assembleRankDistStride(k, stride int, contrib []float64) *RankDist {
	rd := newRankDist(p.keys, p.keyIdx, k)
	for a := 0; a < len(p.leaves); a++ {
		dist := rd.eq[int(p.keyID[a])*(k+1):]
		row := contrib[a*stride : a*stride+k]
		for j := 1; j <= k; j++ {
			dist[j] += row[j-1]
		}
	}
	rd.fillCumulative()
	return rd
}

// Precedence returns Pr(r(keyI) < r(keyJ)) on the compiled program; see
// the package-level Precedence for the statistic's definition.
func (p *Program) Precedence(keyI, keyJ string) float64 {
	if keyI == keyJ {
		return 0
	}
	i, okI := p.findKey(keyI)
	if !okI {
		return 0 // no alternatives: keyI is never present
	}
	j := int32(-1) // unknown keyJ x-marks nothing, like the legacy evaluator
	if jj, ok := p.findKey(keyJ); ok {
		j = jj
	}
	ar := p.acquireArena(0, 1)
	total := 0.0
	p.precedenceSweep(ar, j, func(kid int32, coeff float64) {
		if kid == i {
			total += coeff
		}
	}, func(kid int32) bool { return kid == i })
	p.releaseArena(ar)
	return total
}

// PrecedenceMatrix returns M[i][j] = Pr(r(keys[i]) < r(keys[j])) on the
// compiled program.  One descending-score sweep per target key J fills an
// entire matrix column: within a sweep only the y-mark moves and J's
// alternatives cross the threshold once each, so the whole matrix costs
// O(|keys|·n) incremental path updates instead of O(|keys|²·n) full-tree
// evaluations.
func (p *Program) PrecedenceMatrix(keys []string) [][]float64 {
	m := make([][]float64, len(keys))
	for i := range keys {
		m[i] = make([]float64, len(keys))
	}
	// Rows of each program key id among the requested keys (a duplicated
	// key owns several rows and must fill all of them, like the legacy
	// per-cell loop did; unknown keys simply never match).
	rowsOf := make(map[int32][]int, len(keys))
	for row, key := range keys {
		if kid, ok := p.findKey(key); ok {
			rowsOf[kid] = append(rowsOf[kid], row)
		}
	}
	ar := p.acquireArena(0, 1)
	for col, key := range keys {
		j, ok := p.findKey(key)
		if !ok {
			// No alternatives of keyJ exist, so no x-marks: the sweep
			// degenerates to per-key presence probabilities, matching the
			// legacy evaluator's behavior for unknown keys.
			j = -1
		}
		p.precedenceSweep(ar, j, func(kid int32, coeff float64) {
			for _, row := range rowsOf[kid] {
				if row != col {
					m[row][col] += coeff
				}
			}
		}, func(kid int32) bool {
			_, ok := rowsOf[kid]
			return ok
		})
	}
	p.releaseArena(ar)
	return m
}

// precedenceSweep walks every alternative a (of any key except keyJ, whose
// program key id is j) in descending-score order with the arena capped at
// (0, 1): a carries the y-mark and every alternative of keyJ with a larger
// score carries an x-mark (which, at x-cap 0, truncates away exactly the
// worlds where keyJ outranks a).  The root's x^0 y^1 coefficient is then
// Pr(a present ∧ keyJ not ranked above a); emit receives it per
// alternative.  want filters the keys worth evaluating.  The arena is
// returned to its all-clear state so sweeps can share it.
func (p *Program) precedenceSweep(ar *arena, j int32, emit func(kid int32, coeff float64), want func(kid int32) bool) {
	var alts []int32
	if j >= 0 {
		alts = p.altsOfKey[j]
	}
	cross := 0
	var prev int32 = -1
	for _, a := range p.byScore {
		kid := p.keyID[a]
		if kid == j || !want(kid) {
			continue
		}
		s := p.leaves[a].Score
		if prev >= 0 {
			ar.setLeaf(prev, 0, 0)
		}
		for cross < len(alts) {
			b := alts[cross]
			if p.leaves[b].Score <= s {
				break
			}
			ar.setLeaf(b, 1, 0)
			cross++
		}
		ar.setLeaf(a, 0, 1)
		ar.flush()
		emit(kid, ar.rootCoeff(0, 1))
		prev = a
	}
	// Clear the marks so the next sweep starts from the all-zero state.
	if prev >= 0 {
		ar.setLeaf(prev, 0, 0)
	}
	for _, b := range alts[:cross] {
		ar.setLeaf(b, 0, 0)
	}
	ar.flush()
}

// findKey returns the program key id of key.
func (p *Program) findKey(key string) (int32, bool) {
	kid, ok := p.keyIdx[key]
	return kid, ok
}

// sizeExtents returns the per-instruction polynomial lengths and offsets
// of the untruncated world-size evaluation.  They depend only on the tree
// shape (every leaf contributes exactly the monomial x), so they are
// computed once per Program and shared by all evaluations.
func (p *Program) sizeExtents() (lens, offs []int32) {
	p.sizeOnce.Do(func() {
		n := len(p.insts)
		lens := make([]int32, n)
		offs := make([]int32, n+1)
		for i, in := range p.insts {
			var l int32
			switch in.op {
			case opLeaf:
				l = 2 // the monomial x
			case opSum:
				l = lens[in.a]
				if in.b >= 0 && lens[in.b] > l {
					l = lens[in.b]
				}
				if l < 1 {
					l = 1
				}
			default: // opMul
				l = lens[in.a] + lens[in.b] - 1
			}
			lens[i] = l
			offs[i+1] = offs[i] + l
		}
		p.sizeLens, p.sizeOffs = lens, offs
	})
	return p.sizeLens, p.sizeOffs
}

// WorldSizeDist computes the possible-world size distribution on the
// compiled program: every leaf is assigned x and the untruncated root
// polynomial is evaluated bottom-up over a persistent per-Program buffer.
// Unlike the arena kernels this uses exact per-instruction polynomial
// sizes (degree bounds are known statically once every leaf is x), so
// large trees cost the same O(Σ product sizes) as the legacy evaluator —
// minus its per-node allocations and recursion.
//
// The buffer carries over across weight mutations: patchWeights records
// the changed instructions in sizeDirty, and the next call re-evaluates
// only those and their ancestor paths (ascending instruction id is a
// topological order, so children rewrite before parents).  The repair is
// bit-identical to a full pass because every instruction's row is a pure
// write-first function of its children's rows — recomputed or carried, a
// row holds exactly the floats the full pass writes.
func (p *Program) WorldSizeDist() Poly {
	lens, offs := p.sizeExtents()
	n := len(p.insts)
	p.sizeMu.Lock()
	switch {
	case p.sizeBuf == nil:
		p.sizeBuf = make([]float64, offs[n])
		for i := range p.insts {
			p.sizeRecompute(lens, offs, int32(i))
		}
	case len(p.sizeDirty) > 0:
		dirty := make([]uint64, (n+63)/64)
		for _, id := range p.sizeDirty {
			for i := id; i >= 0; i = p.insts[i].parent {
				w, bit := i>>6, uint64(1)<<(i&63)
				if dirty[w]&bit != 0 {
					break // the rest of this root path is already marked
				}
				dirty[w] |= bit
			}
		}
		for w, word := range dirty {
			base := int32(w) << 6
			for word != 0 {
				p.sizeRecompute(lens, offs, base+int32(bits.TrailingZeros64(word)))
				word &= word - 1
			}
		}
	}
	p.sizeDirty = p.sizeDirty[:0]
	root := p.sizeBuf[offs[n-1]:offs[n]]
	out := Poly(append([]float64(nil), root...)).Trim(0)
	p.sizeMu.Unlock()
	return out
}

// sizeRecompute rewrites instruction id's world-size row as a write-first
// function of its children's rows: every cell of the row is stored, never
// accumulated into, so the row lands on the same bits whether the buffer
// is fresh (full pass) or carries a previous evaluation (dirty-path
// repair).
func (p *Program) sizeRecompute(lens, offs []int32, id int32) {
	in := &p.insts[id]
	buf := p.sizeBuf
	dst := buf[offs[id] : offs[id]+lens[id]]
	switch in.op {
	case opLeaf:
		dst[0], dst[1] = 0, 1
	case opSum:
		la := lens[in.a]
		a := buf[offs[in.a] : offs[in.a]+la]
		for k, v := range a {
			dst[k] = in.wa * v
		}
		clear(dst[la:])
		if in.b >= 0 {
			b := buf[offs[in.b] : offs[in.b]+lens[in.b]]
			for k, v := range b {
				dst[k] += in.wb * v
			}
		}
		dst[0] += in.c
	default:
		// World-size rows are exact-width (dst is precisely
		// len(a)+len(b)-1), so the untruncated kernel applies; convFull
		// accumulates, so the row clears first.
		clear(dst)
		a := buf[offs[in.a] : offs[in.a]+lens[in.a]]
		b := buf[offs[in.b] : offs[in.b]+lens[in.b]]
		convFull(dst, a, b)
	}
}
