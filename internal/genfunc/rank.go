package genfunc

import (
	"fmt"

	"consensus/internal/andxor"
	"consensus/internal/types"
)

// RankDist holds, for every tuple key of a tree, the distribution of the
// tuple's rank r(t) restricted to ranks 1..K, where r(t) is the position of
// t's present alternative when the world is sorted by decreasing score and
// r(t) = infinity when t is absent (Section 5 conventions).
type RankDist struct {
	K    int
	keys []string
	eq   map[string][]float64 // eq[key][i] = Pr(r(t) = i), 1 <= i <= K
	le   map[string][]float64 // le[key][i] = Pr(r(t) <= i)
}

// Ranks computes the rank distribution up to rank k for every key, based
// on one truncated bivariate generating function per leaf (the
// generalization of Example 3 in the paper): for an alternative (t, s),
// mark every leaf of a different key with larger score with x and the
// alternative itself with y; the coefficient of x^(j-1) y is Pr(the
// alternative is present and ranked j-th).  The n per-alternative
// functions are evaluated by the compiled incremental kernel (one shared
// tree pass in descending-score order, see compile.go), not by n
// independent recursive traversals.
//
// It returns an error if two alternatives of different keys share a score
// and can co-occur in a world, because ranks would be ill-defined (the
// paper assumes distinct scores).  Ties between mutually exclusive
// alternatives — common when a correlated tree encodes alternative whole
// worlds, as in Figure 1(iii) — are harmless and accepted.
func Ranks(t *andxor.Tree, k int) (*RankDist, error) {
	return Compile(t).Ranks(k)
}

// Keys returns the tuple keys covered, sorted.
func (rd *RankDist) Keys() []string { return rd.keys }

// PrEq returns Pr(r(t) = i) for 1 <= i <= K (0 outside that range or for
// unknown keys).
func (rd *RankDist) PrEq(key string, i int) float64 {
	d, ok := rd.eq[key]
	if !ok || i < 1 || i > rd.K {
		return 0
	}
	return d[i]
}

// PrLE returns Pr(r(t) <= i) for 1 <= i <= K.
func (rd *RankDist) PrLE(key string, i int) float64 {
	d, ok := rd.le[key]
	if !ok || i < 1 {
		return 0
	}
	if i > rd.K {
		i = rd.K
	}
	return d[i]
}

// PrTopK returns Pr(r(t) <= K), the top-k membership probability used by
// Theorem 3 and the PT-k ranking function.
func (rd *RankDist) PrTopK(key string) float64 { return rd.PrLE(key, rd.K) }

// Dist returns a copy of the rank distribution of key: element i-1 holds
// Pr(r(t) = i) for 1 <= i <= K.  Unknown keys yield nil.  The copy lets
// callers (e.g. serving layers marshalling responses) hand the slice out
// without aliasing the shared, possibly cached, distribution.
func (rd *RankDist) Dist(key string) []float64 {
	d, ok := rd.eq[key]
	if !ok {
		return nil
	}
	return append([]float64(nil), d[1:]...)
}

func errRankCutoff(k int) error {
	return fmt.Errorf("genfunc: rank cutoff k = %d must be positive", k)
}

// ValidateScores reports an error when two alternatives of different keys
// share a score AND can co-occur in a possible world (their co-occurrence
// probability is positive), which would make ranks ill-defined.  Ties
// between mutually exclusive leaves are fine: they never meet in a world.
func ValidateScores(t *andxor.Tree) error {
	leaves := t.LeafAlternatives()
	byScore := map[float64][]int{}
	for i, l := range leaves {
		byScore[l.Score] = append(byScore[l.Score], i)
	}
	for score, idxs := range byScore {
		if len(idxs) < 2 {
			continue
		}
		for a := 0; a < len(idxs); a++ {
			for b := a + 1; b < len(idxs); b++ {
				i, j := idxs[a], idxs[b]
				if leaves[i].Key == leaves[j].Key {
					continue // same tuple: mutually exclusive by the key constraint
				}
				if CoOccurrence(t, map[int]bool{i: true, j: true}) > 0 {
					return fmt.Errorf("genfunc: alternatives %v and %v share score %v and can co-occur; ranking is ill-defined",
						leaves[i], leaves[j], score)
				}
			}
		}
	}
	return nil
}

// Precedence returns Pr(r(ti) < r(tj)): the probability that tuple keyI
// ranks strictly higher than tuple keyJ.  By the infinite-rank convention
// this includes worlds where keyI is present and keyJ absent.  Section 5.5
// notes this is the only statistic the pivot-style Kendall approximation
// needs, and that it is computable with the generating-function method: for
// each alternative a of keyI, mark a with y and every alternative of keyJ
// with a larger score with x; the coefficient of x^0 y^1 is the probability
// that a is present while keyJ is either absent or ranked below it.  The
// evaluation runs on the compiled incremental kernel.
func Precedence(t *andxor.Tree, keyI, keyJ string) float64 {
	return Compile(t).Precedence(keyI, keyJ)
}

// PrecedenceMatrix returns the matrix M[i][j] = Pr(r(keys[i]) < r(keys[j]))
// for the given keys.  The compiled kernel fills one matrix column per
// incremental descending-score sweep, so the whole matrix costs
// O(|keys| · n) path updates instead of O(|keys|² · n) full-tree passes.
func PrecedenceMatrix(t *andxor.Tree, keys []string) [][]float64 {
	return Compile(t).PrecedenceMatrix(keys)
}

// ExpectedRank returns, for every key, the expected-rank statistic of
// Cormode, Li and Yi (referenced in Sections 1-2 as one of the prior
// ranking semantics): E[rank_pw(t)] where rank_pw(t) is t's 1-based rank in
// pw when present and |pw| when absent.  Used as a baseline ranking
// function in the experiments.
func ExpectedRank(t *andxor.Tree) (map[string]float64, error) {
	n := len(t.Keys())
	if n == 0 {
		return nil, fmt.Errorf("genfunc: empty tree")
	}
	rd, err := Ranks(t, n)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, n)
	for _, key := range t.Keys() {
		// Present part: sum over j of j * Pr(r(t)=j).
		s := 0.0
		for j := 1; j <= n; j++ {
			s += float64(j) * rd.PrEq(key, j)
		}
		// Absent part: E[|pw| ; t absent].  Mark every leaf with x and
		// additionally t's own leaves with y; then sum s*coeff(s, 0).
		key := key
		f := Eval2(t, func(i int, l types.Leaf) (int, int) {
			if l.Key == key {
				return 1, 1
			}
			return 1, 0
		}, t.NumLeaves(), 1)
		for sz := 0; sz <= t.NumLeaves(); sz++ {
			s += float64(sz) * f.Coeff(sz, 0)
		}
		out[key] = s
	}
	return out, nil
}
