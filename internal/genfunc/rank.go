package genfunc

import (
	"fmt"

	"consensus/internal/andxor"
)

// RankDist holds, for every tuple key of a tree, the distribution of the
// tuple's rank r(t) restricted to ranks 1..K, where r(t) is the position of
// t's present alternative when the world is sorted by decreasing score and
// r(t) = infinity when t is absent (Section 5 conventions).
//
// Storage is flat and row-major — key row r spans eq[r*(K+1) .. r*(K+1)+K]
// — with the key-to-row index shared with the compiled Program, so
// assembling a distribution allocates O(1) objects instead of one map
// entry and one slice per key.
type RankDist struct {
	K    int
	keys []string
	idx  map[string]int32 // key -> row; shared, never mutated
	eq   []float64        // eq[r*(K+1)+i] = Pr(r(t) = i), 1 <= i <= K
	le   []float64        // le[r*(K+1)+i] = Pr(r(t) <= i)
}

// newRankDist returns a zeroed distribution over the given keys, whose row
// index is idx (shared with the caller, which must never mutate it).
func newRankDist(keys []string, idx map[string]int32, k int) *RankDist {
	return &RankDist{
		K:    k,
		keys: keys,
		idx:  idx,
		eq:   make([]float64, len(keys)*(k+1)),
		le:   make([]float64, len(keys)*(k+1)),
	}
}

// fillCumulative recomputes the le rows from the eq rows.
func (rd *RankDist) fillCumulative() {
	w := rd.K + 1
	for r := 0; r < len(rd.keys); r++ {
		eq := rd.eq[r*w : r*w+w]
		le := rd.le[r*w : r*w+w]
		acc := 0.0
		for i := 1; i <= rd.K; i++ {
			acc += eq[i]
			le[i] = acc
		}
	}
}

// Ranks computes the rank distribution up to rank k for every key, based
// on one truncated bivariate generating function per leaf (the
// generalization of Example 3 in the paper): for an alternative (t, s),
// mark every leaf of a different key with larger score with x and the
// alternative itself with y; the coefficient of x^(j-1) y is Pr(the
// alternative is present and ranked j-th).  The n per-alternative
// functions are evaluated by the compiled incremental kernel (one shared
// tree pass in descending-score order, see compile.go), not by n
// independent recursive traversals.
//
// It returns an error if two alternatives of different keys share a score
// and can co-occur in a world, because ranks would be ill-defined (the
// paper assumes distinct scores).  Ties between mutually exclusive
// alternatives — common when a correlated tree encodes alternative whole
// worlds, as in Figure 1(iii) — are harmless and accepted.
func Ranks(t *andxor.Tree, k int) (*RankDist, error) {
	return compiled(t).Ranks(k)
}

// Keys returns the tuple keys covered, sorted.
func (rd *RankDist) Keys() []string { return rd.keys }

// PrEq returns Pr(r(t) = i) for 1 <= i <= K (0 outside that range or for
// unknown keys).
func (rd *RankDist) PrEq(key string, i int) float64 {
	r, ok := rd.idx[key]
	if !ok || i < 1 || i > rd.K {
		return 0
	}
	return rd.eq[int(r)*(rd.K+1)+i]
}

// PrLE returns Pr(r(t) <= i) for 1 <= i <= K.
func (rd *RankDist) PrLE(key string, i int) float64 {
	r, ok := rd.idx[key]
	if !ok || i < 1 {
		return 0
	}
	if i > rd.K {
		i = rd.K
	}
	return rd.le[int(r)*(rd.K+1)+i]
}

// PrTopK returns Pr(r(t) <= K), the top-k membership probability used by
// Theorem 3 and the PT-k ranking function.
func (rd *RankDist) PrTopK(key string) float64 { return rd.PrLE(key, rd.K) }

// Dist returns a copy of the rank distribution of key: element i-1 holds
// Pr(r(t) = i) for 1 <= i <= K.  Unknown keys yield nil.  The copy lets
// callers (e.g. serving layers marshalling responses) hand the slice out
// without aliasing the shared, possibly cached, distribution.
func (rd *RankDist) Dist(key string) []float64 {
	r, ok := rd.idx[key]
	if !ok {
		return nil
	}
	row := rd.eq[int(r)*(rd.K+1):]
	return append([]float64(nil), row[1:rd.K+1]...)
}

func errRankCutoff(k int) error {
	return fmt.Errorf("genfunc: rank cutoff k = %d must be positive", k)
}

// ValidateScores reports an error when two alternatives of different keys
// share a score AND can co-occur in a possible world (their co-occurrence
// probability is positive), which would make ranks ill-defined.  Ties
// between mutually exclusive leaves are fine: they never meet in a world.
func ValidateScores(t *andxor.Tree) error {
	return compiled(t).ValidateScores()
}

// ValidateScores is the compiled-kernel form of the package-level
// ValidateScores.  The verdict is a property of the tree alone, so it is
// computed once per Program and cached; every batched kernel (Ranks,
// ExpectedRank) consults it for free after the first call.  The cache is
// invalidated by weight mutations (Apply): a tied pair's co-occurrence
// probability depends on the edge weights, so the verdict can flip.
func (p *Program) ValidateScores() error {
	p.valMu.Lock()
	defer p.valMu.Unlock()
	if !p.valDone {
		p.valErr = p.validateScores()
		p.valDone = true
	}
	return p.valErr
}

// validateScores checks all tied cross-key pairs.  Tie groups are the
// contiguous equal-score runs of byScore (descending score, ties by
// ascending leaf index), so iteration order — and therefore the reported
// offending pair — is deterministic, unlike the float64-keyed map the
// legacy implementation ranged over.  All pairs of a group share one
// pooled arena with caps (2, 0): each co-occurrence check is two leaf
// path updates and a read of the x² root coefficient, instead of the full
// recursive Eval1 pass per pair the legacy path performed.
func (p *Program) validateScores() error {
	n := len(p.byScore)
	var ar *arena // lazily acquired: tie-free trees never touch an arena
	defer func() {
		if ar != nil {
			p.releaseArena(ar)
		}
	}()
	for lo := 0; lo < n; {
		s := p.leaves[p.byScore[lo]].Score
		hi := lo + 1
		for hi < n && p.leaves[p.byScore[hi]].Score == s {
			hi++
		}
		group := p.byScore[lo:hi]
		lo = hi
		if len(group) < 2 {
			continue
		}
		if ar == nil {
			ar = p.acquireArena(2, 0)
		}
		for ai := 0; ai < len(group); ai++ {
			i := group[ai]
			ar.setLeaf(i, 1, 0)
			for bi := ai + 1; bi < len(group); bi++ {
				j := group[bi]
				if p.keyID[i] == p.keyID[j] {
					continue // same tuple: mutually exclusive by the key constraint
				}
				ar.setLeaf(j, 1, 0)
				ar.flush()
				co := ar.rootCoeff(2, 0)
				ar.setLeaf(j, 0, 0)
				if co > 0 {
					return fmt.Errorf("genfunc: alternatives %v and %v share score %v and can co-occur; ranking is ill-defined",
						p.leaves[i], p.leaves[j], s)
				}
			}
			ar.setLeaf(i, 0, 0)
		}
	}
	return nil
}

// Precedence returns Pr(r(ti) < r(tj)): the probability that tuple keyI
// ranks strictly higher than tuple keyJ.  By the infinite-rank convention
// this includes worlds where keyI is present and keyJ absent.  Section 5.5
// notes this is the only statistic the pivot-style Kendall approximation
// needs, and that it is computable with the generating-function method: for
// each alternative a of keyI, mark a with y and every alternative of keyJ
// with a larger score with x; the coefficient of x^0 y^1 is the probability
// that a is present while keyJ is either absent or ranked below it.  The
// evaluation runs on the compiled incremental kernel.
func Precedence(t *andxor.Tree, keyI, keyJ string) float64 {
	return compiled(t).Precedence(keyI, keyJ)
}

// PrecedenceMatrix returns the matrix M[i][j] = Pr(r(keys[i]) < r(keys[j]))
// for the given keys.  The compiled kernel fills one matrix column per
// incremental descending-score sweep, so the whole matrix costs
// O(|keys| · n) path updates instead of O(|keys|² · n) full-tree passes.
func PrecedenceMatrix(t *andxor.Tree, keys []string) [][]float64 {
	return compiled(t).PrecedenceMatrix(keys)
}

// ExpectedRank returns, for every key, the expected-rank statistic of
// Cormode, Li and Yi (referenced in Sections 1-2 as one of the prior
// ranking semantics): E[rank_pw(t)] where rank_pw(t) is t's 1-based rank in
// pw when present and |pw| when absent.  Used as a baseline ranking
// function in the experiments.
//
// Both terms run on the compiled incremental kernel with dual-number
// x-rows (caps (1, 1), leaves assigned 1+x so the root's x¹ coefficient is
// the derivative at x=1, i.e. an expected count): the present part
// E[r(t); t present] = Σ_a Pr(a) + E[#higher-ranked co-present; a] is one
// descending-score sweep identical in structure to the rank kernel, and
// the absent part E[|pw|; t absent] is one more sweep that flips each
// key's alternatives to the y-mark in turn.  This replaces the legacy
// path's full rank distribution at cutoff n plus one untruncated recursive
// Eval2 per key.
func ExpectedRank(t *andxor.Tree) (map[string]float64, error) {
	if len(t.Keys()) == 0 {
		return nil, fmt.Errorf("genfunc: empty tree")
	}
	return compiled(t).ExpectedRank()
}

// ExpectedRank is the compiled form of the package-level ExpectedRank; see
// there for the statistic and the kernel structure.
func (p *Program) ExpectedRank() (map[string]float64, error) {
	if len(p.keys) == 0 {
		return nil, fmt.Errorf("genfunc: empty tree")
	}
	if err := p.ValidateScores(); err != nil {
		return nil, err
	}
	fb := p.acquireFloats(len(p.keys))
	ar := p.acquireArena(1, 1)
	p.expectedRankPresent(ar, fb.s)
	p.expectedRankAbsent(ar, fb.s)
	p.releaseArena(ar)
	out := make(map[string]float64, len(p.keys))
	for i, key := range p.keys {
		out[key] = fb.s[i]
	}
	p.releaseFloats(fb)
	return out, nil
}

// setDual applies the expected-rank mark to a leaf: the dual assignment
// 1+x when the leaf outscores the current alternative and belongs to a
// different key (so the x¹ coefficient counts it in expectation), nothing
// otherwise.
func (ar *arena) setDual(leaf int32, score float64, kid int32) {
	if ar.p.leaves[leaf].Score > score && ar.p.keyID[leaf] != kid {
		ar.setLeaf(leaf, dualX, 0)
	} else {
		ar.setLeaf(leaf, 0, 0)
	}
}

// expectedRankPresent accumulates E[r(t); t present] into acc per key id:
// one incremental descending-score sweep (the exact structure of
// ranksRange, with the x-monomial marks replaced by dual 1+x marks).  For
// the y-marked alternative a, the root's x⁰y¹ coefficient is Pr(a
// present) and its x¹y¹ coefficient is E[#higher-scored co-present
// other-key leaves; a present]; their sum over a's alternatives is the
// key's present-part expected rank.
func (p *Program) expectedRankPresent(ar *arena, acc []float64) {
	cross := 0
	var prev int32 = -1
	var prevScore float64
	for t := 0; t < len(p.byScore); t++ {
		a := p.byScore[t]
		s := p.leaves[a].Score
		kid := p.keyID[a]
		if prev >= 0 {
			ar.setDual(prev, s, kid)
		}
		for cross < len(p.byScore) {
			b := p.byScore[cross]
			if p.leaves[b].Score <= s {
				break
			}
			ar.setDual(b, s, kid)
			cross++
		}
		if prev >= 0 && p.keyID[prev] != kid {
			for _, b := range p.altsOfKey[p.keyID[prev]] {
				if p.leaves[b].Score <= prevScore {
					break
				}
				ar.setDual(b, s, kid)
			}
		}
		for _, b := range p.altsOfKey[kid] {
			if p.leaves[b].Score <= s {
				break
			}
			ar.setLeaf(b, 0, 0)
		}
		ar.setLeaf(a, 0, 1)
		ar.flush()
		acc[kid] += ar.rootCoeff(0, 1) + ar.rootCoeff(1, 1)
		prev, prevScore = a, s
	}
}

// expectedRankAbsent accumulates E[|pw|; t absent] into acc per key id.
// Every leaf carries the dual mark 1+x (so the x¹ coefficient of any
// y-row is the expected number of present leaves over those worlds); each
// key's alternatives flip to the pure y-mark in turn, restricting the
// y⁰ rows to the worlds where the key is absent.  One incremental sweep:
// each flip re-evaluates only the key's leaf paths.
func (p *Program) expectedRankAbsent(ar *arena, acc []float64) {
	for i := range p.leaves {
		ar.setLeaf(int32(i), dualX, 0)
	}
	ar.flush()
	for kid := range p.keys {
		for _, b := range p.altsOfKey[kid] {
			ar.setLeaf(b, 0, 1)
		}
		ar.flush()
		acc[kid] += ar.rootCoeff(1, 0)
		for _, b := range p.altsOfKey[kid] {
			ar.setLeaf(b, dualX, 0)
		}
	}
}
