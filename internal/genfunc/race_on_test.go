//go:build race

package genfunc

// raceEnabled reports that the race detector is active: sync.Pool
// deliberately drops items under race instrumentation, so strict
// allocation-pinning assertions are meaningless.
const raceEnabled = true
