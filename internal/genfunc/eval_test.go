package genfunc

import (
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/exact"
	"consensus/internal/numeric"
	"consensus/internal/types"
	"consensus/internal/workload"
)

// TestWorldSizeDistFigure1i reproduces the generating function printed in
// Figure 1(i) of the paper: 0.08 x^2 + 0.44 x^3 + 0.48 x^4.
func TestWorldSizeDistFigure1i(t *testing.T) {
	p := WorldSizeDist(andxor.Figure1i())
	want := Poly{0, 0, 0.08, 0.44, 0.48}
	if len(p) != len(want) {
		t.Fatalf("size dist = %v", p)
	}
	for i := range want {
		if !numeric.AlmostEqual(p.Coeff(i), want.Coeff(i), 1e-12) {
			t.Errorf("coeff x^%d = %g, want %g", i, p.Coeff(i), want.Coeff(i))
		}
	}
}

// TestWorldSizeDistFigure1iii reproduces the other generating function in
// Figure 1: 0.3y + 0.3x^2 + 0.4x when y marks the leaf (t3,6) and x marks
// higher-scored leaves... the figure's caption instead states the world
// SIZE function for the tree (iii) is implied by its three 3-tuple worlds:
// x^3 with total probability 1.
func TestWorldSizeDistFigure1iii(t *testing.T) {
	p := WorldSizeDist(andxor.Figure1iii())
	if !numeric.AlmostEqual(p.Coeff(3), 1, 1e-12) || !numeric.AlmostEqual(p.Sum(), 1, 1e-12) {
		t.Fatalf("size dist = %v, want all mass at 3", p)
	}
}

// TestRankGeneratingFunctionFigure1iii checks the exact computation the
// caption of Figure 1(iii) describes: assign y to the leaf (t3,6), x to all
// leaves with key != t3 and score > 6, and 1 elsewhere; the coefficient of
// y (i.e. x^0 y^1) is Pr(the (t3,6) alternative is ranked first) = 0.3.
func TestRankGeneratingFunctionFigure1iii(t *testing.T) {
	tr := andxor.Figure1iii()
	target := types.Leaf{Key: "t3", Score: 6}
	f := Eval2(tr, func(i int, l types.Leaf) (int, int) {
		if l == target {
			return 0, 1
		}
		if l.Key != target.Key && l.Score > target.Score {
			return 1, 0
		}
		return 0, 0
	}, 2, 1)
	if !numeric.AlmostEqual(f.Coeff(0, 1), 0.3, 1e-12) {
		t.Fatalf("coefficient of y = %g, want 0.3", f.Coeff(0, 1))
	}
}

// Cross-check Eval1 against enumeration on random nested trees: the
// world-size distribution from the generating function must match the
// enumerated distribution exactly.
func TestWorldSizeDistMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(6), 2)
		p := WorldSizeDist(tr)
		ws := exact.MustEnumerate(tr)
		dist := exact.WorldSizeDist(ws)
		for i := 0; i < len(p) || i < len(dist); i++ {
			var d float64
			if i < len(dist) {
				d = dist[i]
			}
			if !numeric.AlmostEqual(p.Coeff(i), d, 1e-9) {
				t.Fatalf("trial %d size %d: genfunc %g enum %g (tree %s)", trial, i, p.Coeff(i), d, tr)
			}
		}
		if !numeric.AlmostEqual(p.Sum(), 1, 1e-9) {
			t.Fatalf("distribution sums to %g", p.Sum())
		}
	}
}

// Cross-check SubsetSizeDist (Example 2) against enumeration.
func TestSubsetSizeDistMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(5), 2)
		// Mark a random subset of leaf indices.
		marked := map[int]bool{}
		markedLeaves := map[types.Leaf]bool{}
		for i, l := range tr.LeafAlternatives() {
			if rng.Intn(2) == 0 {
				marked[i] = true
				markedLeaves[l] = true
			}
		}
		p := SubsetSizeDist(tr, func(i int, l types.Leaf) bool { return marked[i] })
		ws := exact.MustEnumerate(tr)
		for sz := 0; sz < len(p)+2; sz++ {
			want := exact.ExpectedOver(ws, func(w *types.World) float64 {
				cnt := 0
				for _, l := range w.Leaves() {
					if markedLeaves[l] {
						cnt++
					}
				}
				if cnt == sz {
					return 1
				}
				return 0
			})
			if !numeric.AlmostEqual(p.Coeff(sz), want, 1e-9) {
				t.Fatalf("trial %d: Pr(|pw∩S|=%d) genfunc %g enum %g", trial, sz, p.Coeff(sz), want)
			}
		}
	}
}

func TestCoOccurrenceMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(5), 2)
		leaves := tr.LeafAlternatives()
		// Pick two distinct random leaves.
		i := rng.Intn(len(leaves))
		j := rng.Intn(len(leaves))
		got := CoOccurrence(tr, map[int]bool{i: true, j: true})
		ws := exact.MustEnumerate(tr)
		want := exact.ExpectedOver(ws, func(w *types.World) float64 {
			if w.Contains(leaves[i]) && w.Contains(leaves[j]) {
				return 1
			}
			return 0
		})
		if i == j {
			want = exact.ExpectedOver(ws, func(w *types.World) float64 {
				if w.Contains(leaves[i]) {
					return 1
				}
				return 0
			})
			// CoOccurrence with a single index counts Pr(leaf present).
			got = CoOccurrence(tr, map[int]bool{i: true})
		}
		if !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: co-occurrence genfunc %g enum %g", trial, got, want)
		}
	}
}

func TestAllAbsentMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 2+rng.Intn(5), 2)
		keys := tr.Keys()
		sel := map[string]bool{keys[rng.Intn(len(keys))]: true, keys[rng.Intn(len(keys))]: true}
		got := AllAbsent(tr, sel)
		ws := exact.MustEnumerate(tr)
		want := exact.ExpectedOver(ws, func(w *types.World) float64 {
			for k := range sel {
				if w.HasKey(k) {
					return 0
				}
			}
			return 1
		})
		if !numeric.AlmostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: all-absent genfunc %g enum %g", trial, got, want)
		}
	}
}
