package genfunc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/types"
	"consensus/internal/workload"
)

// kernelTol is the agreement bound between the compiled kernel and the
// legacy recursive evaluator; the only differences are floating-point
// association orders (binarized fan-ins, score-order sweeps).
const kernelTol = 1e-12

// testTree builds one of the workload families from a seed, covering
// independent, block-disjoint and deeply nested correlation structure.
func testTree(shape, seed, n, maxAlts int) *andxor.Tree {
	rng := rand.New(rand.NewSource(int64(seed)))
	switch shape % 3 {
	case 0:
		return workload.Independent(rng, n)
	case 1:
		return workload.BID(rng, n, maxAlts)
	default:
		return workload.Nested(rng, n, maxAlts)
	}
}

func diffRankDists(t *testing.T, tr *andxor.Tree, got, want *RankDist, k int, label string) {
	t.Helper()
	for _, key := range tr.Keys() {
		for i := 1; i <= k; i++ {
			if d := math.Abs(got.PrEq(key, i) - want.PrEq(key, i)); d > kernelTol {
				t.Fatalf("%s: PrEq(%q, %d) differs by %g (got %v want %v)",
					label, key, i, d, got.PrEq(key, i), want.PrEq(key, i))
			}
			if d := math.Abs(got.PrLE(key, i) - want.PrLE(key, i)); d > kernelTol {
				t.Fatalf("%s: PrLE(%q, %d) differs by %g", label, key, i, d)
			}
		}
	}
}

// TestCompiledRanksMatchLegacy pins the batched incremental kernel to the
// legacy per-leaf recursive evaluation across tree families, sizes and
// cutoffs.
func TestCompiledRanksMatchLegacy(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		for _, n := range []int{1, 2, 7, 24} {
			for _, k := range []int{1, 3, 9, 40} {
				tr := testTree(shape, 100*shape+n, n, 3)
				got, err := Ranks(tr, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ranksLegacy(tr, k)
				if err != nil {
					t.Fatal(err)
				}
				diffRankDists(t, tr, got, want, k, fmt.Sprintf("shape=%d n=%d k=%d", shape, n, k))
			}
		}
	}
}

// TestCompiledPrecedenceMatchesLegacy pins single-pair precedence and the
// batched matrix sweep to the legacy evaluator.
func TestCompiledPrecedenceMatchesLegacy(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		tr := testTree(shape, 7+shape, 10, 3)
		keys := tr.Keys()
		gotM := PrecedenceMatrix(tr, keys)
		wantM := precedenceMatrixLegacy(tr, keys)
		for i := range keys {
			for j := range keys {
				if d := math.Abs(gotM[i][j] - wantM[i][j]); d > kernelTol {
					t.Fatalf("shape=%d M[%d][%d] differs by %g", shape, i, j, d)
				}
			}
		}
		for _, i := range []int{0, len(keys) / 2} {
			for _, j := range []int{len(keys) - 1, 1} {
				got := Precedence(tr, keys[i], keys[j])
				want := precedenceLegacy(tr, keys[i], keys[j])
				if d := math.Abs(got - want); d > kernelTol {
					t.Fatalf("shape=%d Precedence(%q, %q) differs by %g", shape, keys[i], keys[j], d)
				}
			}
		}
	}
}

// TestCompiledPrecedenceUnknownKeys pins the kernel's edge-case behavior
// for keys absent from the tree to the legacy evaluator's: an unknown
// keyI contributes nothing, an unknown keyJ excludes nothing.
func TestCompiledPrecedenceUnknownKeys(t *testing.T) {
	tr := testTree(1, 3, 6, 2)
	keys := tr.Keys()
	if got := Precedence(tr, "no-such-key", keys[0]); got != 0 {
		t.Fatalf("unknown keyI: got %v, want 0", got)
	}
	got := Precedence(tr, keys[0], "no-such-key")
	want := precedenceLegacy(tr, keys[0], "no-such-key")
	if d := math.Abs(got - want); d > kernelTol {
		t.Fatalf("unknown keyJ: got %v, legacy %v", got, want)
	}
	gotM := PrecedenceMatrix(tr, []string{keys[0], "no-such-key", keys[1]})
	wantM := precedenceMatrixLegacy(tr, []string{keys[0], "no-such-key", keys[1]})
	for i := range gotM {
		for j := range gotM[i] {
			if d := math.Abs(gotM[i][j] - wantM[i][j]); d > kernelTol {
				t.Fatalf("matrix with unknown key: M[%d][%d] differs by %g", i, j, d)
			}
		}
	}
}

// TestPrecedenceMatrixDuplicateKeys checks that a key listed twice fills
// all of its rows and columns like the legacy per-cell loop did.
func TestPrecedenceMatrixDuplicateKeys(t *testing.T) {
	tr := testTree(1, 4, 5, 2)
	keys := tr.Keys()
	dup := []string{keys[0], keys[1], keys[0]}
	got := PrecedenceMatrix(tr, dup)
	want := precedenceMatrixLegacy(tr, dup)
	for i := range dup {
		for j := range dup {
			if d := math.Abs(got[i][j] - want[i][j]); d > kernelTol {
				t.Fatalf("M[%d][%d] = %v, legacy %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	if got[0][1] != got[2][1] {
		t.Fatalf("duplicate rows differ: %v vs %v", got[0][1], got[2][1])
	}
}

// TestMaxPathLen pins the compiled path-length statistic on shapes with
// known depth: a balanced BID tree stays logarithmic in its block count,
// and a single leaf is a one-instruction path.
func TestMaxPathLen(t *testing.T) {
	single := Compile(andxor.MustNew(andxor.NewOr(
		[]*andxor.Node{andxor.NewLeaf(types.Leaf{Key: "t1", Score: 1})}, []float64{0.5})))
	if got := single.MaxPathLen(); got != 2 {
		t.Fatalf("or-over-leaf: MaxPathLen = %d, want 2", got)
	}
	tr := workload.BID(rand.New(rand.NewSource(3)), 64, 2)
	p := Compile(tr)
	// leaf -> block sum -> ~log2(64) binarized product levels -> root.
	if got := p.MaxPathLen(); got < 7 || got > 10 {
		t.Fatalf("BID(64): MaxPathLen = %d, want ~8", got)
	}
}

// TestCompiledWorldSizeDistMatchesLegacy pins the compiled one-pass
// world-size evaluation to the legacy recursive one.
func TestCompiledWorldSizeDistMatchesLegacy(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		for _, n := range []int{1, 5, 33} {
			tr := testTree(shape, 11*shape+n, n, 3)
			got := WorldSizeDist(tr)
			want := worldSizeDistLegacy(tr)
			if len(got) != len(want) {
				t.Fatalf("shape=%d n=%d: length %d vs legacy %d", shape, n, len(got), len(want))
			}
			for i := range got {
				if d := math.Abs(got[i] - want[i]); d > kernelTol {
					t.Fatalf("shape=%d n=%d: coeff %d differs by %g", shape, n, i, d)
				}
			}
		}
	}
}

// TestRanksParallelBitIdentical verifies the sharded kernel reproduces the
// sequential kernel bit for bit at every worker count: arena values are
// pure functions of the assignment and the merge runs in leaf order.
func TestRanksParallelBitIdentical(t *testing.T) {
	tr := testTree(2, 5, 30, 3)
	k := 8
	want, err := Ranks(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 64} {
		got, err := RanksParallel(tr, k, workers)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range tr.Keys() {
			for i := 1; i <= k; i++ {
				if got.PrEq(key, i) != want.PrEq(key, i) {
					t.Fatalf("workers=%d: PrEq(%q, %d) = %v, sequential %v",
						workers, key, i, got.PrEq(key, i), want.PrEq(key, i))
				}
			}
		}
	}
}

// TestCompiledRanksZeroSteadyStateAllocs proves the incremental kernel's
// steady state allocates nothing: with the program, arena and output rows
// reused, a full batched rank evaluation performs zero heap allocations.
func TestCompiledRanksZeroSteadyStateAllocs(t *testing.T) {
	tr := workload.BID(rand.New(rand.NewSource(9)), 24, 2)
	p := Compile(tr)
	k := 6
	ar := newArena(p, k-1, 1)
	contrib := make([]float64, p.NumLeaves()*k)
	if allocs := testing.AllocsPerRun(10, func() {
		p.ranksRange(ar, k, 0, p.NumLeaves(), contrib)
	}); allocs != 0 {
		t.Fatalf("steady-state rank kernel allocates %v objects per run, want 0", allocs)
	}
}

// FuzzCompiledKernel cross-checks the compiled kernel against the legacy
// recursive evaluator on randomized and/xor trees from every workload
// family: rank distributions, precedence probabilities and world-size
// distributions must agree within 1e-12.
func FuzzCompiledKernel(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(8), uint8(5))
	f.Add(int64(2), uint8(1), uint8(12), uint8(3))
	f.Add(int64(3), uint8(2), uint8(20), uint8(1))
	f.Add(int64(4), uint8(4), uint8(1), uint8(9))
	f.Add(int64(5), uint8(5), uint8(31), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, shape, size, cutoff uint8) {
		n := 1 + int(size)%32
		k := 1 + int(cutoff)%12
		tr := testTree(int(shape), int(seed%1_000_003), n, 1+int(shape/3)%4)
		got, gotErr := Ranks(tr, k)
		want, wantErr := ranksLegacy(tr, k)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("error mismatch: kernel %v, legacy %v", gotErr, wantErr)
		}
		if gotErr == nil {
			diffRankDists(t, tr, got, want, k, "fuzz ranks")
		}
		keys := tr.Keys()
		rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
		for trial := 0; trial < 3; trial++ {
			i, j := keys[rng.Intn(len(keys))], keys[rng.Intn(len(keys))]
			gp, wp := Precedence(tr, i, j), precedenceLegacy(tr, i, j)
			if d := math.Abs(gp - wp); d > kernelTol {
				t.Fatalf("Precedence(%q, %q) differs by %g", i, j, d)
			}
		}
		gw, ww := WorldSizeDist(tr), worldSizeDistLegacy(tr)
		if len(gw) != len(ww) {
			t.Fatalf("world-size length %d vs legacy %d", len(gw), len(ww))
		}
		for i := range gw {
			if d := math.Abs(gw[i] - ww[i]); d > kernelTol {
				t.Fatalf("world-size coeff %d differs by %g", i, d)
			}
		}
		ge, geErr := ExpectedRank(tr)
		we, weErr := expectedRankLegacy(tr)
		if (geErr == nil) != (weErr == nil) {
			t.Fatalf("ExpectedRank error mismatch: kernel %v, legacy %v", geErr, weErr)
		}
		if geErr == nil {
			for _, key := range keys {
				if d := math.Abs(ge[key] - we[key]); d > kernelTol*math.Max(1, math.Abs(we[key])) {
					t.Fatalf("E[rank(%s)] differs by %g", key, d)
				}
			}
		}
		if gv, wv := ValidateScores(tr), validateScoresLegacy(tr); (gv == nil) != (wv == nil) {
			t.Fatalf("ValidateScores verdict mismatch: kernel %v, legacy %v", gv, wv)
		}
	})
}

// BenchmarkCompiledRanksSteadyState measures the allocation-free steady
// state of the incremental rank kernel (compile and arena setup excluded).
func BenchmarkCompiledRanksSteadyState(b *testing.B) {
	tr := workload.BID(rand.New(rand.NewSource(20)), 64, 2)
	p := Compile(tr)
	k := 10
	ar := newArena(p, k-1, 1)
	contrib := make([]float64, p.NumLeaves()*k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ranksRange(ar, k, 0, p.NumLeaves(), contrib)
	}
}

// BenchmarkRanksCompiledVsLegacy compares the end-to-end compiled path
// (compile + arena + batch) against the legacy per-leaf evaluator.
func BenchmarkRanksCompiledVsLegacy(b *testing.B) {
	tr := workload.BID(rand.New(rand.NewSource(21)), 128, 2)
	k := 10
	b.Run("compiled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Ranks(tr, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("legacy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := ranksLegacy(tr, k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestRanksCutoffPrefixBitIdentical pins the cross-cutoff contract the
// engine's cache reuse depends on: Ranks(t, k) is a bit-identical prefix
// of Ranks(t, k') for every k < k'.  k=1 exercises the scalar dual-number
// arena (x-cap 0), whose accumulation order must match the generic
// kernels' exactly — including adding an or-node's stop constant last
// (the regression this test pins caught the dual kernel folding it in
// early, a 1-ulp divergence on trees with multi-child or-nodes).
func TestRanksCutoffPrefixBitIdentical(t *testing.T) {
	trees := []*andxor.Tree{
		// BID shapes with multi-child or-nodes (stop constants on binary
		// sums) are where the dual kernel's association order diverged.
		testTree(1, 0, 12, 3),
		testTree(1, 0, 30, 3),
		testTree(1, 3, 6, 3),
	}
	for shape := 0; shape < 3; shape++ {
		trees = append(trees, testTree(shape, 51+shape, 18, 3))
	}
	for _, tr := range trees {
		wide, err := Ranks(tr, 9)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 5} {
			narrow, err := Ranks(tr, k)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range tr.Keys() {
				for i := 1; i <= k; i++ {
					if narrow.PrEq(key, i) != wide.PrEq(key, i) {
						t.Fatalf("k=%d: PrEq(%q, %d) = %x, k=9 prefix %x (tree %s)",
							k, key, i, narrow.PrEq(key, i), wide.PrEq(key, i), tr)
					}
				}
			}
		}
	}
}
