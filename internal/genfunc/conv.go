package genfunc

// Truncated-convolution kernels shared by the evaluation arena and the
// one-pass world-size evaluator.  The rows they operate on are dense:
// every coefficient inside a row's effective length is stored and
// multiplied, with no per-element zero test.  Sparsity is exploited one
// level up (recomputeMul skips whole rows whose effective length is zero),
// which keeps the inner loops branch-free, fixed-stride mul-adds the
// hardware can pipeline.
//
// convInto dispatches by the inner operand's length: one-, two- and
// three-coefficient operands (leaf and near-leaf rows) get dedicated
// straight-line kernels, and wider operands run the 4-wide block kernel
// conv4, which processes four outer coefficients per pass with a sliding
// three-register window over the inner operand — one b-load, one
// read-modify-write of dst and four mul-adds per inner step, about 2.5
// micro-ops per multiply-add versus ~6 for the scalar kernel.
//
// Every kernel accumulates each output coefficient in ascending
// outer-index order, regardless of shape dispatch or truncation bound.
// That uniformity is load-bearing: a truncated evaluation is bit-identical
// to the matching prefix of a wider one, which is what lets the engine
// serve small-cutoff rank queries exactly from a cached larger-cutoff
// distribution.  convIntoScalar preserves the pre-blocking scalar kernel
// (same summation order) as the differential reference and the
// microbenchmark baseline.

// convInto accumulates the convolution a*b into dst, dropping terms at or
// beyond len(dst) (the truncation bound, which is never smaller than
// either operand).  Operands never alias dst.
func convInto(dst, a, b []float64) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	n := len(dst)
	if len(b) >= 4 { // the hot wide-row case dispatches first
		i := 0
		for ; i+4 <= len(a); i += 4 {
			conv4(dst[i:], a[i], a[i+1], a[i+2], a[i+3], b)
		}
		for ; i < len(a); i++ {
			bb := b
			if i+len(bb) > n {
				bb = bb[:n-i]
			}
			axpy(dst[i:], a[i], bb)
		}
		return
	}
	switch len(b) {
	case 1:
		// One-coefficient inner operand: a single scaled accumulation
		// with a as the vector.
		aa := a
		if len(aa) > n {
			aa = aa[:n]
		}
		axpy(dst, b[0], aa)
	case 2:
		conv2(dst, a, b[0], b[1])
	default:
		conv3(dst, a, b[0], b[1], b[2])
	}
}

// convFull accumulates the untruncated convolution a*b into dst, which
// must have length >= len(a)+len(b)-1 (world-size rows are exact-width, so
// the 4-wide blocks always run their full epilogue).
func convFull(dst, a, b []float64) {
	convInto(dst, a, b)
}

// conv2 accumulates a*(b0 + b1·x) into dst: d[j] += a[j-1]*b1 + a[j]*b0,
// in ascending a-index order per output.
func conv2(dst, a []float64, b0, b1 float64) {
	la, n := len(a), len(dst)
	dst[0] += a[0] * b0
	for j := 1; j < la; j++ {
		dst[j] = dst[j] + a[j-1]*b1 + a[j]*b0
	}
	if la < n {
		dst[la] += a[la-1] * b1
	}
}

// conv3 accumulates a*(b0 + b1·x + b2·x²) into dst, ascending a-index
// order per output.
func conv3(dst, a []float64, b0, b1, b2 float64) {
	la, n := len(a), len(dst)
	dst[0] += a[0] * b0
	if la == 1 {
		if n > 1 {
			dst[1] += a[0] * b1
			if n > 2 {
				dst[2] += a[0] * b2
			}
		}
		return
	}
	dst[1] = dst[1] + a[0]*b1 + a[1]*b0
	for j := 2; j < la; j++ {
		dst[j] = dst[j] + a[j-2]*b2 + a[j-1]*b1 + a[j]*b0
	}
	if la < n {
		dst[la] = dst[la] + a[la-2]*b2 + a[la-1]*b1
		if la+1 < n {
			dst[la+1] += a[la-1] * b2
		}
	}
}

// conv4 accumulates the contributions of four consecutive outer
// coefficients into the window d: d[j] += a0*b[j] + a1*b[j-1] + a2*b[j-2]
// + a3*b[j-3], truncated at len(d).  Requires len(b) >= 4 and len(d) >= 4
// (callers slice d at the block offset, so the window always covers the
// four diagonal starts).  The three most recent b values ride in
// registers, so the steady-state loop is one load, one read-modify-write
// and four mul-adds per output.
func conv4(d []float64, a0, a1, a2, a3 float64, b []float64) {
	m := len(b)
	l := len(d)
	s1, s2, s3 := b[2], b[1], b[0]
	d[0] += a0 * s3
	d[1] = d[1] + a0*s2 + a1*s3
	d[2] = d[2] + a0*s1 + a1*s2 + a2*s3
	jmax := m
	if l < m {
		jmax = l
	}
	for j := 3; j < jmax; j++ {
		bj := b[j]
		d[j] = d[j] + a0*bj + a1*s1 + a2*s2 + a3*s3
		s3, s2, s1 = s2, s1, bj
	}
	if l <= m {
		return // truncated tail: the trailing diagonals fall past the cap
	}
	// Epilogue: s1 = b[m-1], s2 = b[m-2], s3 = b[m-3].  (The explicit
	// x = x + ... form keeps accumulation left-associated term by term —
	// `x += a + b` would group the right side first and break bit-identity
	// with the scalar reference.)
	d[m] = d[m] + a1*s1 + a2*s2 + a3*s3
	if l > m+1 {
		d[m+1] = d[m+1] + a2*s1 + a3*s2
		if l > m+2 {
			d[m+2] += a3 * s1
		}
	}
}

// axpy accumulates s*b into d (d[j] += s*b[j]); len(d) >= len(b).  The
// 4-wide block is the unrolled hot loop: four independent mul-adds per
// iteration with the bounds checks hoisted by the j+4 <= len(b) guard.
func axpy(d []float64, s float64, b []float64) {
	d = d[:len(b)]
	j := 0
	for ; j+4 <= len(b); j += 4 {
		d0 := d[j] + s*b[j]
		d1 := d[j+1] + s*b[j+1]
		d2 := d[j+2] + s*b[j+2]
		d3 := d[j+3] + s*b[j+3]
		d[j] = d0
		d[j+1] = d1
		d[j+2] = d2
		d[j+3] = d3
	}
	for ; j < len(b); j++ {
		d[j] += s * b[j]
	}
}

// convIntoScalar is the pre-blocking scalar kernel: a per-element zero
// test on the outer operand and a scalar mul-add inner loop.  It is kept
// as the differential-test reference and the microbenchmark baseline for
// the blocked kernels above.
func convIntoScalar(dst, a, b []float64) {
	for i, av := range a {
		if av == 0 {
			continue
		}
		bb := b
		if i+len(bb) > len(dst) {
			bb = bb[:len(dst)-i]
		}
		d := dst[i:]
		for j, bv := range bb {
			d[j] += av * bv
		}
	}
}
