package genfunc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func polyEq(a, b Poly, tol float64) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if math.Abs(a.Coeff(i)-b.Coeff(i)) > tol {
			return false
		}
	}
	return true
}

func TestPolyMul(t *testing.T) {
	// (1 + x)(2 + 3x) = 2 + 5x + 3x^2
	p := Poly{1, 1}
	q := Poly{2, 3}
	got := p.MulTrunc(q, -1)
	want := Poly{2, 5, 3}
	if !polyEq(got, want, 0) {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Truncated at degree 1.
	got = p.MulTrunc(q, 1)
	if !polyEq(got, Poly{2, 5}, 0) {
		t.Fatalf("truncated: got %v", got)
	}
}

func TestPolyMulEmpty(t *testing.T) {
	if got := (Poly{}).MulTrunc(Poly{1, 2}, -1); len(got) != 0 {
		t.Fatalf("empty * p = %v", got)
	}
}

func TestPolyAddScaled(t *testing.T) {
	p := Poly{1}
	p = p.AddScaled(Poly{0, 2, 4}, 0.5)
	if !polyEq(p, Poly{1, 1, 2}, 0) {
		t.Fatalf("got %v", p)
	}
}

func TestPolyTrim(t *testing.T) {
	p := Poly{1, 2, 0, 0}
	if got := p.Trim(0); len(got) != 2 {
		t.Fatalf("Trim kept %v", got)
	}
	z := Poly{0}
	if got := z.Trim(0); len(got) != 1 {
		t.Fatalf("Trim of zero poly = %v", got)
	}
}

// Property: polynomial multiplication is commutative and matches evaluation
// homomorphism p(v)*q(v) = (p*q)(v).
func TestPolyMulProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(a, b []float64) bool {
		if len(a) > 8 {
			a = a[:8]
		}
		if len(b) > 8 {
			b = b[:8]
		}
		for i := range a {
			a[i] = math.Mod(a[i], 10)
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) {
				a[i] = 0
			}
		}
		for i := range b {
			b[i] = math.Mod(b[i], 10)
			if math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				b[i] = 0
			}
		}
		p, q := Poly(a), Poly(b)
		pq := p.MulTrunc(q, -1)
		qp := q.MulTrunc(p, -1)
		if !polyEq(pq, qp, 1e-9) {
			return false
		}
		v := rng.Float64()
		pv, qv, pqv := evalAt(p, v), evalAt(q, v), evalAt(pq, v)
		return math.Abs(pv*qv-pqv) <= 1e-6*(1+math.Abs(pqv))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func evalAt(p Poly, v float64) float64 {
	s := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		s = s*v + p[i]
	}
	return s
}

func TestPoly2Basics(t *testing.T) {
	// (1 + x + y)^2 truncated at (1,1): 1 + 2x + 2y + 2xy (x^2,y^2 cut)
	p := NewPoly2(1, 1)
	p.SetCoeff(0, 0, 1)
	p.SetCoeff(1, 0, 1)
	p.SetCoeff(0, 1, 1)
	sq := p.MulTrunc(p)
	if sq.Coeff(0, 0) != 1 || sq.Coeff(1, 0) != 2 || sq.Coeff(0, 1) != 2 || sq.Coeff(1, 1) != 2 {
		t.Fatalf("square = %+v", sq)
	}
}

func TestPoly2MulMatchesPoly1OnUnivariate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		a := make(Poly, n)
		b := make(Poly, m)
		for i := range a {
			a[i] = rng.Float64()
		}
		for i := range b {
			b[i] = rng.Float64()
		}
		cap := n + m - 2
		a2 := NewPoly2(cap, 0)
		b2 := NewPoly2(cap, 0)
		for i, c := range a {
			a2.SetCoeff(i, 0, c)
		}
		for i, c := range b {
			b2.SetCoeff(i, 0, c)
		}
		want := a.MulTrunc(b, cap)
		got := a2.MulTrunc(b2)
		for i := 0; i <= cap; i++ {
			if math.Abs(got.Coeff(i, 0)-want.Coeff(i)) > 1e-12 {
				t.Fatalf("deg %d: got %g want %g", i, got.Coeff(i, 0), want.Coeff(i))
			}
		}
	}
}

func TestPoly2CapMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cap mismatch")
		}
	}()
	NewPoly2(1, 1).MulTrunc(NewPoly2(2, 1))
}

func TestMonomialBeyondCapIsZero(t *testing.T) {
	m := Monomial2(3, 0, 2, 1)
	if m.Sum() != 0 {
		t.Fatal("monomial beyond cap must be the zero polynomial")
	}
}
