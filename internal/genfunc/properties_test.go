package genfunc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"consensus/internal/types"
	"consensus/internal/workload"
)

// Cross-cutting probabilistic identities that must hold on every tree;
// checked with testing/quick over seeded random nested workloads.

// Identity: Pr(r(i) < r(j)) + Pr(r(j) < r(i)) = 1 - Pr(both absent).
// (Whenever at least one tuple is present, exactly one of the two
// precedence events holds, since distinct scores break all ties.)
func TestPrecedenceComplementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := workload.Nested(rng, 2+rng.Intn(5), 2)
		keys := tr.Keys()
		i := rng.Intn(len(keys))
		j := rng.Intn(len(keys))
		if i == j {
			return true
		}
		pij := Precedence(tr, keys[i], keys[j])
		pji := Precedence(tr, keys[j], keys[i])
		absent := AllAbsent(tr, map[string]bool{keys[i]: true, keys[j]: true})
		return approxEq(pij+pji, 1-absent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(240))}); err != nil {
		t.Fatal(err)
	}
}

// Identity: the world-size generating function is a probability
// distribution (non-negative coefficients summing to 1) and its mean is
// the total marginal mass.
func TestWorldSizeDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := workload.Nested(rng, 1+rng.Intn(7), 3)
		p := WorldSizeDist(tr)
		sum, mean := 0.0, 0.0
		for i, c := range p {
			if c < -1e-12 {
				return false
			}
			sum += c
			mean += float64(i) * c
		}
		total := 0.0
		for _, m := range tr.MarginalProbs() {
			total += m
		}
		return approxEq(sum, 1) && approxEq(mean, total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(241))}); err != nil {
		t.Fatal(err)
	}
}

// Identity: for any leaf subset S, the subset-size distribution sums to 1
// and E[|pw ∩ S|] equals the sum of the marked leaves' marginals.
func TestSubsetSizeDistributionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := workload.Nested(rng, 1+rng.Intn(6), 2)
		marks := make([]bool, tr.NumLeaves())
		for i := range marks {
			marks[i] = rng.Intn(2) == 0
		}
		p := SubsetSizeDist(tr, func(i int, _ types.Leaf) bool { return marks[i] })
		sum, mean := 0.0, 0.0
		for i, c := range p {
			sum += c
			mean += float64(i) * c
		}
		want := 0.0
		for i, m := range tr.MarginalProbs() {
			if marks[i] {
				want += m
			}
		}
		return approxEq(sum, 1) && approxEq(mean, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(242))}); err != nil {
		t.Fatal(err)
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9
}
