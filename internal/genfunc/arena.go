package genfunc

import "slices"

// arena holds one truncated bivariate polynomial slot per instruction of a
// Program, plus the current leaf assignment and the dirty bookkeeping for
// incremental re-evaluation.  All buffers are allocated at construction;
// steady-state evaluation (setLeaf / flush / rootCoeff cycles) performs
// zero heap allocations.
//
// Slot layout: instruction i's coefficient of x^xd y^yd lives at
// vals[i*sz + yd*w + xd] with w = xcap+1 and sz = w*(ycap+1).  Each y-row
// additionally records an effective length in lens (coefficients at or
// beyond the length are identically zero and never read), so products cost
// O(len_a·len_b) like the legacy size-matched polynomials instead of
// O(cap²); this is what keeps untruncated world-size evaluations linear in
// actual degrees.
type arena struct {
	p          *Program
	xcap, ycap int
	w, sz      int

	vals []float64
	lens []int32 // instruction i, row y -> lens[i*(ycap+1)+y]

	xdeg, ydeg []int32 // current assignment per leaf

	dirty   []int32 // pending instruction ids, unsorted
	isDirty []bool
}

func newArena(p *Program, xcap, ycap int) *arena {
	w := xcap + 1
	sz := w * (ycap + 1)
	return &arena{
		p:       p,
		xcap:    xcap,
		ycap:    ycap,
		w:       w,
		sz:      sz,
		vals:    make([]float64, len(p.insts)*sz),
		lens:    make([]int32, len(p.insts)*(ycap+1)),
		xdeg:    make([]int32, len(p.leaves)),
		ydeg:    make([]int32, len(p.leaves)),
		dirty:   make([]int32, 0, len(p.insts)),
		isDirty: make([]bool, len(p.insts)),
	}
}

// reset zeroes the assignment of every leaf and fully re-evaluates.
func (ar *arena) reset() {
	for i := range ar.xdeg {
		ar.xdeg[i] = 0
		ar.ydeg[i] = 0
	}
	ar.evalFull()
}

// evalFull recomputes every instruction bottom-up and clears dirty state.
func (ar *arena) evalFull() {
	for i := range ar.p.insts {
		ar.recompute(int32(i))
		ar.isDirty[i] = false
	}
	ar.dirty = ar.dirty[:0]
}

// setLeaf updates one leaf's assignment and marks its root path dirty.
// No-op when the assignment is unchanged.
func (ar *arena) setLeaf(leaf int32, xd, yd int32) {
	if ar.xdeg[leaf] == xd && ar.ydeg[leaf] == yd {
		return
	}
	ar.xdeg[leaf] = xd
	ar.ydeg[leaf] = yd
	// Mark the leaf's instruction and every ancestor.  Stop at the first
	// already-dirty node: its own marking already queued the rest of the
	// path.
	for n := ar.p.leafNode[leaf]; n >= 0 && !ar.isDirty[n]; n = ar.p.insts[n].parent {
		ar.isDirty[n] = true
		ar.dirty = append(ar.dirty, n)
	}
}

// setGeneric applies the standard rank-kernel mark to a leaf: x when the
// leaf outscores the current alternative and belongs to a different key,
// nothing otherwise.
func (ar *arena) setGeneric(leaf int32, score float64, kid int32) {
	if ar.p.leaves[leaf].Score > score && ar.p.keyID[leaf] != kid {
		ar.setLeaf(leaf, 1, 0)
	} else {
		ar.setLeaf(leaf, 0, 0)
	}
}

// flush re-evaluates the dirty instructions in postorder.  Ascending
// instruction id is a topological order (children always precede parents),
// so one sorted sweep suffices.
func (ar *arena) flush() {
	if len(ar.dirty) == 0 {
		return
	}
	slices.Sort(ar.dirty)
	for _, id := range ar.dirty {
		ar.recompute(id)
		ar.isDirty[id] = false
	}
	ar.dirty = ar.dirty[:0]
}

// rootCoeff returns the root polynomial's coefficient of x^i y^j.
func (ar *arena) rootCoeff(i, j int) float64 {
	root := len(ar.p.insts) - 1
	if i < 0 || j < 0 || j > ar.ycap || int32(i) >= ar.lens[root*(ar.ycap+1)+j] {
		return 0
	}
	return ar.vals[root*ar.sz+j*ar.w+i]
}

// recompute rewrites instruction id's slot as a pure function of its
// children's current slots (no in-place accumulation across evaluations,
// so results are independent of update history).
func (ar *arena) recompute(id int32) {
	in := &ar.p.insts[id]
	switch in.op {
	case opLeaf:
		ar.recomputeLeaf(id, in)
	case opSum:
		ar.recomputeSum(id, in)
	default:
		ar.recomputeMul(id, in)
	}
}

func (ar *arena) recomputeLeaf(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	for y := 0; y <= ar.ycap; y++ {
		ar.lens[lbase+y] = 0
	}
	xd, yd := ar.xdeg[in.leaf], ar.ydeg[in.leaf]
	if int(xd) > ar.xcap || int(yd) > ar.ycap {
		return // monomial truncated away: the zero polynomial
	}
	row := ar.vals[base+int(yd)*ar.w:]
	for i := int32(0); i < xd; i++ {
		row[i] = 0
	}
	row[xd] = 1
	ar.lens[lbase+int(yd)] = xd + 1
}

func (ar *arena) recomputeSum(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	abase := int(in.a) * ar.sz
	albase := int(in.a) * (ar.ycap + 1)
	bbase, blbase := 0, 0
	if in.b >= 0 {
		bbase = int(in.b) * ar.sz
		blbase = int(in.b) * (ar.ycap + 1)
	}
	for y := 0; y <= ar.ycap; y++ {
		la := int(ar.lens[albase+y])
		lb := 0
		if in.b >= 0 {
			lb = int(ar.lens[blbase+y])
		}
		ext := la
		if lb > ext {
			ext = lb
		}
		if y == 0 && in.c != 0 && ext < 1 {
			ext = 1
		}
		dst := ar.vals[base+y*ar.w : base+y*ar.w+ext]
		for i := range dst {
			dst[i] = 0
		}
		a := ar.vals[abase+y*ar.w : abase+y*ar.w+la]
		for i, v := range a {
			dst[i] = in.wa * v
		}
		if lb > 0 {
			b := ar.vals[bbase+y*ar.w : bbase+y*ar.w+lb]
			for i, v := range b {
				dst[i] += in.wb * v
			}
		}
		if y == 0 && ext > 0 {
			dst[0] += in.c
		}
		ar.lens[lbase+y] = int32(ext)
	}
}

func (ar *arena) recomputeMul(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	abase := int(in.a) * ar.sz
	albase := int(in.a) * (ar.ycap + 1)
	bbase := int(in.b) * ar.sz
	blbase := int(in.b) * (ar.ycap + 1)
	for y := 0; y <= ar.ycap; y++ {
		// Effective extent of the output row: the largest product extent
		// over the contributing (ya, yb) row pairs, clamped to the cap.
		ext := 0
		for ya := 0; ya <= y; ya++ {
			la := int(ar.lens[albase+ya])
			lb := int(ar.lens[blbase+y-ya])
			if la == 0 || lb == 0 {
				continue
			}
			e := la + lb - 1
			if e > ar.w {
				e = ar.w
			}
			if e > ext {
				ext = e
			}
		}
		dst := ar.vals[base+y*ar.w : base+y*ar.w+ext]
		for i := range dst {
			dst[i] = 0
		}
		for ya := 0; ya <= y; ya++ {
			la := int(ar.lens[albase+ya])
			lb := int(ar.lens[blbase+y-ya])
			if la == 0 || lb == 0 {
				continue
			}
			a := ar.vals[abase+ya*ar.w : abase+ya*ar.w+la]
			b := ar.vals[bbase+(y-ya)*ar.w : bbase+(y-ya)*ar.w+lb]
			convInto(dst, a, b)
		}
		ar.lens[lbase+y] = int32(ext)
	}
}

// convInto accumulates the truncated convolution a*b into dst (whose
// length is the truncation bound).
func convInto(dst, a, b []float64) {
	for i, av := range a {
		if av == 0 {
			continue
		}
		bb := b
		if i+len(bb) > len(dst) {
			bb = bb[:len(dst)-i]
		}
		d := dst[i:]
		for j, bv := range bb {
			d[j] += av * bv
		}
	}
}
