package genfunc

import "math/bits"

// arena holds one truncated bivariate polynomial slot per instruction of a
// Program, plus the current leaf assignment and the dirty bookkeeping for
// incremental re-evaluation.  All buffers are allocated at construction;
// steady-state evaluation (setLeaf / flush / rootCoeff cycles) performs
// zero heap allocations, and arenas are recycled across evaluations (and
// across engine requests) through the Program's arena pool.
//
// Slot layout: instruction i's coefficient of x^xd y^yd lives at
// vals[i*sz + yd*w + xd] with w = xcap+1 and sz = w*(ycap+1).  Each y-row
// additionally records an effective length in lens (coefficients at or
// beyond the length are identically zero and never read), so products cost
// O(len_a·len_b) like the legacy size-matched polynomials instead of
// O(cap²); this is what keeps untruncated world-size evaluations linear in
// actual degrees.  Rows are dense within their effective length: zero
// coefficients inside a row are stored and multiplied (no per-element zero
// branch), keeping the convolution inner loops fixed-stride (conv.go).
//
// Leaf assignments are monomials x^xd y^yd, plus one non-monomial form the
// expected-rank kernel needs: xd == dualX assigns (1+x)·y^yd, whose
// truncated arithmetic at xcap 1 is exactly dual-number arithmetic (the
// x^1 coefficient of the root is then the derivative d/dx at x=1, i.e. the
// expected number of x-marked co-present leaves).
//
// Two slot shapes get specialized arithmetic:
//
//   - ycap == 1 (every rank/precedence kernel): recomputeMulY1 unrolls the
//     y-row pairing ((0,0) for row 0; (0,1)+(1,0) for row 1) with direct
//     effective-length formulas instead of the generic double loop.
//
//   - w == 1 && ycap == 1 (the precedence kernels' (0,1) caps): slots are
//     two scalars and every instruction is straight-line dual arithmetic
//     with no length bookkeeping at all (recomputeDual).
type arena struct {
	p          *Program
	insts      []inst // == p.insts, hoisted to skip the double indirection
	xcap, ycap int
	w, sz      int
	dual       bool // w == 1 && ycap == 1: scalar two-float slots

	vals []float64
	lens []int32 // instruction i, row y -> lens[i*(ycap+1)+y]

	xdeg, ydeg []int32 // current assignment per leaf
	marked     int     // leaves with a nonzero assignment

	// snapVals/snapLens snapshot the fully evaluated all-zero-assignment
	// state: resetting a heavily marked arena (the end state of a rank
	// batch) is a pair of copies instead of a near-full re-evaluation.
	snapVals []float64
	snapLens []int32

	// dirty is a bitset over instruction ids.  Instructions are postorder,
	// so scanning words low-to-high and bits low-to-high visits children
	// before parents — the flush needs no sorting at all.
	dirty    []uint64
	anyDirty bool
}

// dualX as a leaf x-degree assigns the polynomial 1+x instead of a
// monomial; see the arena comment.
const dualX = -1

// newArena builds an arena for p with the given caps, fully evaluated at
// the all-zero leaf assignment (so reset is incremental from day one).
func newArena(p *Program, xcap, ycap int) *arena {
	w := xcap + 1
	sz := w * (ycap + 1)
	ar := &arena{
		p:     p,
		insts: p.insts,
		xcap:  xcap,
		ycap:  ycap,
		w:     w,
		sz:    sz,
		dual:  w == 1 && ycap == 1,
		vals:  make([]float64, len(p.insts)*sz),
		lens:  make([]int32, len(p.insts)*(ycap+1)),
		xdeg:  make([]int32, len(p.leaves)),
		ydeg:  make([]int32, len(p.leaves)),
		dirty: make([]uint64, (len(p.insts)+63)/64),
	}
	if ar.dual {
		// Dense scalar mode: every row is permanently length 1 and the
		// effective-length machinery is bypassed entirely.
		for i := range ar.lens {
			ar.lens[i] = 1
		}
	}
	ar.evalFull()
	ar.snapVals = append([]float64(nil), ar.vals...)
	ar.snapLens = append([]int32(nil), ar.lens...)
	return ar
}

// reset returns every leaf to the zero assignment.  A lightly marked
// arena (the pooled steady state of the precedence sweeps) re-evaluates
// just the marked root paths; a heavily marked one (the end state of a
// rank batch) restores the all-zero snapshot with two copies.  Both paths
// land on bit-identical state: every instruction value is a pure function
// of the assignment.
func (ar *arena) reset() {
	if ar.marked == 0 {
		ar.flush() // possible leftovers from an aborted evaluation
		return
	}
	if ar.marked*8 > len(ar.xdeg) {
		clear(ar.xdeg)
		clear(ar.ydeg)
		copy(ar.vals, ar.snapVals)
		copy(ar.lens, ar.snapLens)
		clear(ar.dirty)
		ar.anyDirty = false
		ar.marked = 0
		return
	}
	for i := range ar.xdeg {
		if ar.xdeg[i] != 0 || ar.ydeg[i] != 0 {
			ar.setLeaf(int32(i), 0, 0)
		}
	}
	ar.flush()
}

// evalFull recomputes every instruction bottom-up and clears dirty state.
func (ar *arena) evalFull() {
	for i := range ar.insts {
		ar.recompute(int32(i))
	}
	clear(ar.dirty)
	ar.anyDirty = false
}

// setLeaf updates one leaf's assignment and marks its root path dirty.
// No-op when the assignment is unchanged.
func (ar *arena) setLeaf(leaf int32, xd, yd int32) {
	if ar.xdeg[leaf] == xd && ar.ydeg[leaf] == yd {
		return
	}
	if ar.xdeg[leaf] == 0 && ar.ydeg[leaf] == 0 {
		ar.marked++
	} else if xd == 0 && yd == 0 {
		ar.marked--
	}
	ar.xdeg[leaf] = xd
	ar.ydeg[leaf] = yd
	// Mark the leaf's instruction and every ancestor.  Stop at the first
	// already-dirty node: its own marking already flagged the rest of the
	// path.
	ar.anyDirty = true
	for n := ar.p.leafNode[leaf]; n >= 0; n = ar.insts[n].parent {
		w, bit := n>>6, uint64(1)<<(n&63)
		if ar.dirty[w]&bit != 0 {
			break
		}
		ar.dirty[w] |= bit
	}
}

// setGeneric applies the standard rank-kernel mark to a leaf: x when the
// leaf outscores the current alternative and belongs to a different key,
// nothing otherwise.
func (ar *arena) setGeneric(leaf int32, score float64, kid int32) {
	if ar.p.leaves[leaf].Score > score && ar.p.keyID[leaf] != kid {
		ar.setLeaf(leaf, 1, 0)
	} else {
		ar.setLeaf(leaf, 0, 0)
	}
}

// markInst marks one instruction and its root path dirty, stopping at the
// first already-dirty ancestor (whose own marking flagged the rest).  It
// is the instruction-level analogue of setLeaf's path marking, used by the
// weight-patch path where the change originates at an internal sum
// instruction rather than a leaf assignment.
func (ar *arena) markInst(id int32) {
	ar.anyDirty = true
	for n := id; n >= 0; n = ar.insts[n].parent {
		w, bit := n>>6, uint64(1)<<(n&63)
		if ar.dirty[w]&bit != 0 {
			break
		}
		ar.dirty[w] |= bit
	}
}

// patchWeights re-evaluates the arena after instruction weights changed
// (ar.insts aliases the Program's instruction array, so the new weights
// are already visible).  The arena first returns to the all-zero
// assignment, then recomputes the changed instructions and their
// ancestors, and finally re-snapshots: the stored all-zero state must
// reflect the new weights or a later heavy reset would resurrect stale
// values.
func (ar *arena) patchWeights(changed []int32) {
	ar.reset()
	for _, id := range changed {
		ar.markInst(id)
	}
	ar.flush()
	copy(ar.snapVals, ar.vals)
	copy(ar.snapLens, ar.lens)
}

// flush re-evaluates the dirty instructions in postorder.  Ascending
// instruction id is a topological order (children always precede parents),
// so one low-to-high scan of the dirty bitset suffices — no sort.
func (ar *arena) flush() {
	if !ar.anyDirty {
		return
	}
	for w, word := range ar.dirty {
		if word == 0 {
			continue
		}
		ar.dirty[w] = 0
		base := int32(w) << 6
		for word != 0 {
			ar.recompute(base + int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	ar.anyDirty = false
}

// rootCoeff returns the root polynomial's coefficient of x^i y^j.
func (ar *arena) rootCoeff(i, j int) float64 {
	root := len(ar.insts) - 1
	if i < 0 || j < 0 || j > ar.ycap || int32(i) >= ar.lens[root*(ar.ycap+1)+j] {
		return 0
	}
	return ar.vals[root*ar.sz+j*ar.w+i]
}

// recompute rewrites instruction id's slot as a pure function of its
// children's current slots (no in-place accumulation across evaluations,
// so results are independent of update history).
func (ar *arena) recompute(id int32) {
	in := &ar.insts[id]
	if ar.dual {
		ar.recomputeDual(id, in)
		return
	}
	switch in.op {
	case opLeaf:
		ar.recomputeLeaf(id, in)
	case opSum:
		ar.recomputeSum(id, in)
	default:
		if ar.ycap == 1 {
			ar.recomputeMulY1(id, in)
		} else {
			ar.recomputeMul(id, in)
		}
	}
}

// recomputeDual is the straight-line kernel for w == 1, ycap == 1 slots:
// value v0 + v1·y per instruction, no effective lengths, no loops.  This
// is the shape of every precedence evaluation (x-cap 0 truncates away the
// worlds where the competitor outranks the marked alternative).
func (ar *arena) recomputeDual(id int32, in *inst) {
	v := ar.vals
	i2 := int(id) << 1
	switch in.op {
	case opLeaf:
		var v0, v1 float64
		if xd := ar.xdeg[in.leaf]; xd <= 0 {
			// x^0 (or 1+x truncated at x-cap 0, which is the constant 1).
			switch ar.ydeg[in.leaf] {
			case 0:
				v0 = 1
			case 1:
				v1 = 1
			}
		}
		v[i2], v[i2+1] = v0, v1
	case opSum:
		// Same accumulation order as recomputeSum — a term, b term, then
		// the stop constant last — so a dual (x-cap 0) evaluation stays a
		// bit-identical prefix of any wider-cap evaluation.
		a2 := int(in.a) << 1
		v0 := in.wa * v[a2]
		v1 := in.wa * v[a2+1]
		if in.b >= 0 {
			b2 := int(in.b) << 1
			v0 += in.wb * v[b2]
			v1 += in.wb * v[b2+1]
		}
		v0 += in.c
		v[i2], v[i2+1] = v0, v1
	default: // opMul, truncated at y^1
		a2, b2 := int(in.a)<<1, int(in.b)<<1
		a0, a1 := v[a2], v[a2+1]
		b0, b1 := v[b2], v[b2+1]
		v[i2] = a0 * b0
		v[i2+1] = a0*b1 + a1*b0
	}
}

func (ar *arena) recomputeLeaf(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	for y := 0; y <= ar.ycap; y++ {
		ar.lens[lbase+y] = 0
	}
	xd, yd := ar.xdeg[in.leaf], ar.ydeg[in.leaf]
	if int(yd) > ar.ycap {
		return // monomial truncated away: the zero polynomial
	}
	row := ar.vals[base+int(yd)*ar.w:]
	if xd == dualX {
		// The dual assignment (1+x)·y^yd: coefficients 1, 1 (the x part
		// truncates away at x-cap 0, leaving the constant).
		row[0] = 1
		n := int32(1)
		if ar.xcap >= 1 {
			row[1] = 1
			n = 2
		}
		ar.lens[lbase+int(yd)] = n
		return
	}
	if int(xd) > ar.xcap {
		return
	}
	for i := int32(0); i < xd; i++ {
		row[i] = 0
	}
	row[xd] = 1
	ar.lens[lbase+int(yd)] = xd + 1
}

func (ar *arena) recomputeSum(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	abase := int(in.a) * ar.sz
	albase := int(in.a) * (ar.ycap + 1)
	bbase, blbase := 0, 0
	if in.b >= 0 {
		bbase = int(in.b) * ar.sz
		blbase = int(in.b) * (ar.ycap + 1)
	}
	for y := 0; y <= ar.ycap; y++ {
		la := int(ar.lens[albase+y])
		lb := 0
		if in.b >= 0 {
			lb = int(ar.lens[blbase+y])
		}
		ext := la
		if lb > ext {
			ext = lb
		}
		if y == 0 && in.c != 0 && ext < 1 {
			ext = 1
		}
		// Write-first: the wa*a prefix overwrites, the [la, ext) gap is
		// zero-filled, then the b term and constant accumulate — no
		// clear-then-reread pass over the row.
		dst := ar.vals[base+y*ar.w : base+y*ar.w+ext]
		a := ar.vals[abase+y*ar.w : abase+y*ar.w+la]
		for i, v := range a {
			dst[i] = in.wa * v
		}
		clear(dst[la:])
		if lb > 0 {
			b := ar.vals[bbase+y*ar.w : bbase+y*ar.w+lb]
			for i, v := range b {
				dst[i] += in.wb * v
			}
		}
		if y == 0 && ext > 0 {
			dst[0] += in.c
		}
		ar.lens[lbase+y] = int32(ext)
	}
}

// recomputeMulY1 is the product kernel for ycap == 1 slots (every rank and
// expected-rank evaluation): the generic (ya, y-ya) pairing unrolls to
// row0 = a0*b0 and row1 = a0*b1 + a1*b0, with effective lengths computed
// directly instead of by the generic scan.
func (ar *arena) recomputeMulY1(id int32, in *inst) {
	w := ar.w
	base := int(id) * ar.sz
	abase := int(in.a) * ar.sz
	bbase := int(in.b) * ar.sz
	la0 := int(ar.lens[int(in.a)<<1])
	la1 := int(ar.lens[int(in.a)<<1|1])
	lb0 := int(ar.lens[int(in.b)<<1])
	lb1 := int(ar.lens[int(in.b)<<1|1])

	ext0 := 0
	if la0 > 0 && lb0 > 0 {
		ext0 = la0 + lb0 - 1
		if ext0 > w {
			ext0 = w
		}
	}
	ext1 := 0
	if la0 > 0 && lb1 > 0 {
		if e := min(la0+lb1-1, w); e > ext1 {
			ext1 = e
		}
	}
	if la1 > 0 && lb0 > 0 {
		if e := min(la1+lb0-1, w); e > ext1 {
			ext1 = e
		}
	}
	// One fused clear for both destination rows: they are adjacent in the
	// slot (row 1 starts at base+w), so zeroing [0, ext0) and [w, w+ext1)
	// as a single span costs one memclr call; the (ext0, w) gap is beyond
	// row 0's effective length and never read.
	if ext1 > 0 {
		clear(ar.vals[base : base+w+ext1])
	} else {
		clear(ar.vals[base : base+ext0])
	}
	if ext0 > 0 {
		convInto(ar.vals[base:base+ext0], ar.vals[abase:abase+la0], ar.vals[bbase:bbase+lb0])
	}
	ar.lens[int(id)<<1] = int32(ext0)
	if ext1 > 0 {
		dst1 := ar.vals[base+w : base+w+ext1]
		if la0 > 0 && lb1 > 0 {
			convInto(dst1, ar.vals[abase:abase+la0], ar.vals[bbase+w:bbase+w+lb1])
		}
		if la1 > 0 && lb0 > 0 {
			convInto(dst1, ar.vals[abase+w:abase+w+la1], ar.vals[bbase:bbase+lb0])
		}
	}
	ar.lens[int(id)<<1|1] = int32(ext1)
}

func (ar *arena) recomputeMul(id int32, in *inst) {
	base := int(id) * ar.sz
	lbase := int(id) * (ar.ycap + 1)
	abase := int(in.a) * ar.sz
	albase := int(in.a) * (ar.ycap + 1)
	bbase := int(in.b) * ar.sz
	blbase := int(in.b) * (ar.ycap + 1)
	for y := 0; y <= ar.ycap; y++ {
		// Effective extent of the output row: the largest product extent
		// over the contributing (ya, yb) row pairs, clamped to the cap.
		ext := 0
		for ya := 0; ya <= y; ya++ {
			la := int(ar.lens[albase+ya])
			lb := int(ar.lens[blbase+y-ya])
			if la == 0 || lb == 0 {
				continue
			}
			e := la + lb - 1
			if e > ar.w {
				e = ar.w
			}
			if e > ext {
				ext = e
			}
		}
		dst := ar.vals[base+y*ar.w : base+y*ar.w+ext]
		clear(dst)
		for ya := 0; ya <= y; ya++ {
			la := int(ar.lens[albase+ya])
			lb := int(ar.lens[blbase+y-ya])
			if la == 0 || lb == 0 {
				continue
			}
			a := ar.vals[abase+ya*ar.w : abase+ya*ar.w+la]
			b := ar.vals[bbase+(y-ya)*ar.w : bbase+(y-ya)*ar.w+lb]
			convInto(dst, a, b)
		}
		ar.lens[lbase+y] = int32(ext)
	}
}
