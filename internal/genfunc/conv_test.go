package genfunc

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// convOut computes the truncated convolution a*b output-stationary: each
// destination coefficient accumulates in a register across 4-wide output
// blocks and is stored exactly once (store=true overwrites dst; store=false
// adds).  Measured on the arena's shapes it beats the blocked kernel only
// on short inner operands (which the dedicated conv2/conv3 kernels now
// cover) and loses on the wide truncated/dense shapes, so it lives here as
// a benchmark variant rather than in the production dispatch.  Its
// summation order is ascending b-index (descending a-index), which also
// differs from the production kernels' bit-exactness contract.
func convOut(dst, a, b []float64, store bool) {
	la, lb := len(a), len(b)
	n := len(dst)
	j := 0
	for ; j+4 <= n; j += 4 {
		cLo := max(j+4-la, 0) // slo of output j+3
		cHi := min(j, lb-1)   // shi of output j
		var acc0, acc1, acc2, acc3 float64
		if cLo > cHi {
			// Degenerate block (tiny operand or heavy truncation): plain
			// per-output dots.
			acc0 = convDot(a, b, j)
			acc1 = convDot(a, b, j+1)
			acc2 = convDot(a, b, j+2)
			acc3 = convDot(a, b, j+3)
		} else {
			// Prefix terms below the shared core (at most 3 per output).
			acc0 = convDotRange(a, b, j, max(j-la+1, 0), cLo-1)
			acc1 = convDotRange(a, b, j+1, max(j+1-la+1, 0), cLo-1)
			acc2 = convDotRange(a, b, j+2, max(j+2-la+1, 0), cLo-1)
			acc3 = convDotRange(a, b, j+3, max(j+3-la+1, 0), cLo-1)
			// Core: all four outputs take b[s]·a[j+t-s]; the four a-values
			// are consecutive and slide down one element per step.
			w1, w2, w3 := a[j+1-cLo], a[j+2-cLo], a[j+3-cLo]
			for s := cLo; s <= cHi; s++ {
				w0 := a[j-s]
				bv := b[s]
				acc0 += bv * w0
				acc1 += bv * w1
				acc2 += bv * w2
				acc3 += bv * w3
				w3, w2, w1 = w2, w1, w0
			}
			// Suffix terms above the core (at most 3 per output).
			acc1 += convDotRange(a, b, j+1, cHi+1, min(j+1, lb-1))
			acc2 += convDotRange(a, b, j+2, cHi+1, min(j+2, lb-1))
			acc3 += convDotRange(a, b, j+3, cHi+1, min(j+3, lb-1))
		}
		if store {
			dst[j], dst[j+1], dst[j+2], dst[j+3] = acc0, acc1, acc2, acc3
		} else {
			dst[j] += acc0
			dst[j+1] += acc1
			dst[j+2] += acc2
			dst[j+3] += acc3
		}
	}
	for ; j < n; j++ {
		if store {
			dst[j] = convDot(a, b, j)
		} else {
			dst[j] += convDot(a, b, j)
		}
	}
}

// convDot returns output coefficient j of the convolution a*b.
func convDot(a, b []float64, j int) float64 {
	return convDotRange(a, b, j, max(j-len(a)+1, 0), min(j, len(b)-1))
}

// convDotRange returns the partial dot Σ b[s]·a[j-s] over s in [slo, shi],
// ascending.
func convDotRange(a, b []float64, j, slo, shi int) float64 {
	acc := 0.0
	for s := slo; s <= shi; s++ {
		acc += b[s] * a[j-s]
	}
	return acc
}

// convShapes are the operand/destination shapes the arena kernels
// actually produce: short-b (a leaf or near-leaf row against a wide row),
// truncated-tail (two wide rows clamped at the cap, the dominant shape of
// large-k rank batches), and dense (untruncated world-size rows).
var convShapes = []struct {
	name       string
	la, lb, ln int
}{
	{"short-b", 20, 2, 20},
	{"truncated-tail", 20, 20, 20},
	{"dense", 16, 16, 31},
}

// convVariants are the kernels under comparison; all accumulate a*b into
// dst truncated at len(dst).
var convVariants = []struct {
	name string
	fn   func(dst, a, b []float64)
}{
	{"scalar", convIntoScalar},
	{"blocked", convInto},
	{"outstat", func(dst, a, b []float64) { convOut(dst, a, b, false) }},
}

// TestConvVariantsAgree pins every convolution kernel to the scalar
// reference on randomized shapes, including degenerate and heavily
// truncated ones.
func TestConvVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		la := 1 + rng.Intn(24)
		lb := 1 + rng.Intn(24)
		ln := 1 + rng.Intn(la+lb-1)
		if ln < la {
			ln = la // arena rows are never shorter than an operand
		}
		a := make([]float64, la)
		b := make([]float64, lb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		if rng.Intn(4) == 0 {
			a[rng.Intn(la)] = 0 // exercise the scalar kernel's zero skip
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		init := make([]float64, ln)
		for i := range init {
			init[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), init...)
		convIntoScalar(want, a, b)
		for _, v := range convVariants[1:] {
			got := append([]float64(nil), init...)
			v.fn(got, a, b)
			for i := range got {
				if v.name == "blocked" {
					// The production dispatch preserves the scalar kernel's
					// per-output ascending-index summation order exactly.
					if got[i] != want[i] {
						t.Fatalf("%s: la=%d lb=%d ln=%d coeff %d = %v, scalar %v (must be bit-identical)",
							v.name, la, lb, ln, i, got[i], want[i])
					}
				} else if d := math.Abs(got[i] - want[i]); d > 1e-12 {
					t.Fatalf("%s: la=%d lb=%d ln=%d coeff %d differs by %g", v.name, la, lb, ln, i, d)
				}
			}
		}
		// The store form must equal the accumulate form run on zeros.
		got := make([]float64, ln)
		convOut(got, a, b, true)
		zero := make([]float64, ln)
		convOut(zero, a, b, false)
		for i := range got {
			if got[i] != zero[i] {
				t.Fatalf("convOut store/accumulate mismatch at %d: %v vs %v", i, got[i], zero[i])
			}
		}
	}
}

// TestConvTruncationPrefixStable pins the property the engine's rank-dist
// cache reuse depends on: evaluating with a tighter truncation bound
// yields bit-for-bit the prefix of the wider evaluation, for every kernel.
func TestConvTruncationPrefixStable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 20)
	b := make([]float64, 20)
	for i := range a {
		a[i], b[i] = rng.Float64(), rng.Float64()
	}
	for _, v := range convVariants {
		wide := make([]float64, 39)
		v.fn(wide, a, b)
		for _, ln := range []int{20, 25, 31} {
			narrow := make([]float64, ln)
			v.fn(narrow, a, b)
			for i := range narrow {
				if narrow[i] != wide[i] {
					t.Fatalf("%s: truncation at %d changed coeff %d: %v vs %v", v.name, ln, i, narrow[i], wide[i])
				}
			}
		}
	}
	wideStore := make([]float64, 39)
	convOut(wideStore, a, b, true)
	narrowStore := make([]float64, 20)
	convOut(narrowStore, a, b, true)
	for i := range narrowStore {
		if narrowStore[i] != wideStore[i] {
			t.Fatalf("convOut store: truncation changed coeff %d", i)
		}
	}
}

// convBenchBatch is the number of kernel invocations per benchmark
// iteration: a single kernel call is ~100ns, far below timer resolution
// at the fixed -benchtime the bench-json artifacts use, so each reported
// ns/op covers a batch of this size.
const convBenchBatch = 512

// BenchmarkConvInto compares the convolution kernels on the shapes the
// rank/size kernels produce; `make bench-json` includes these rows so the
// inner-loop trajectory is tracked alongside the end-to-end benches.
// ns/op is per batch of convBenchBatch kernel invocations.
func BenchmarkConvInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, shape := range convShapes {
		av := make([]float64, shape.la)
		bv := make([]float64, shape.lb)
		for i := range av {
			av[i] = rng.Float64()
		}
		for i := range bv {
			bv[i] = rng.Float64()
		}
		dst := make([]float64, shape.ln)
		for _, v := range convVariants {
			b.Run(fmt.Sprintf("%s/%s", v.name, shape.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for r := 0; r < convBenchBatch; r++ {
						v.fn(dst, av, bv)
					}
				}
			})
		}
		b.Run(fmt.Sprintf("outstat-store/%s", shape.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < convBenchBatch; r++ {
					convOut(dst, av, bv, true)
				}
			}
		})
	}
}
