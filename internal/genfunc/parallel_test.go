package genfunc

import (
	"math/rand"
	"testing"

	"consensus/internal/numeric"
	"consensus/internal/workload"
)

func TestRanksParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 10; trial++ {
		tr := workload.BID(rng, 10+rng.Intn(20), 3)
		k := 1 + rng.Intn(6)
		seq, err := Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 7} {
			par, err := RanksParallel(tr, k, workers)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range tr.Keys() {
				for i := 1; i <= k; i++ {
					if !numeric.AlmostEqual(seq.PrEq(key, i), par.PrEq(key, i), 1e-12) {
						t.Fatalf("trial %d workers %d key %s rank %d: %g vs %g",
							trial, workers, key, i, seq.PrEq(key, i), par.PrEq(key, i))
					}
				}
			}
		}
	}
}

func TestRanksParallelValidation(t *testing.T) {
	tr := workload.Independent(rand.New(rand.NewSource(212)), 4)
	if _, err := RanksParallel(tr, 0, 4); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}

func TestRanksParallelNestedTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	tr := workload.Nested(rng, 12, 2)
	seq, err := Ranks(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RanksParallel(tr, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range tr.Keys() {
		if !numeric.AlmostEqual(seq.PrTopK(key), par.PrTopK(key), 1e-12) {
			t.Fatalf("key %s: %g vs %g", key, seq.PrTopK(key), par.PrTopK(key))
		}
	}
}
