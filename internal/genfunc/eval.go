package genfunc

import (
	"consensus/internal/andxor"
	"consensus/internal/types"
)

// Assignment1 maps a leaf (identified by its depth-first index and its
// tuple alternative) to the degree of the single variable x it contributes:
// 0 for the constant 1, 1 for x, or any small power.
type Assignment1 func(i int, l types.Leaf) int

// Assignment2 maps a leaf to the degrees (a, b) of the monomial x^a y^b
// it contributes; (0, 0) is the constant 1.
type Assignment2 func(i int, l types.Leaf) (xdeg, ydeg int)

// Eval1 computes the univariate generating function of the tree under the
// given variable assignment, truncating all products at degree cap
// (cap < 0 disables truncation).  Per Theorem 1 of the paper the
// coefficient of x^i in the result is the total probability of the possible
// worlds containing exactly i leaves of degree-1 assignment (more
// generally, total marked degree i).
func Eval1(t *andxor.Tree, assign Assignment1, cap int) Poly {
	idx := 0
	var walk func(n *andxor.Node) Poly
	walk = func(n *andxor.Node) Poly {
		switch n.Kind() {
		case andxor.KindLeaf:
			d := assign(idx, n.Leaf())
			idx++
			if cap >= 0 && d > cap {
				return NewPoly(cap) // monomial truncated away entirely
			}
			m := NewPoly(d)
			m[d] = 1
			return m
		case andxor.KindOr:
			out := Poly{n.StopProb()}
			for i, c := range n.Children() {
				p := n.Probs()[i]
				child := walk(c)
				if p != 0 {
					out = out.AddScaled(child, p)
				}
			}
			return out
		default: // KindAnd
			out := One()
			for _, c := range n.Children() {
				out = out.MulTrunc(walk(c), cap)
			}
			return out
		}
	}
	return walk(t.Root())
}

// Eval2 computes the bivariate generating function of the tree under the
// given assignment, truncated at (xcap, ycap).  The coefficient of x^i y^j
// is the total probability of worlds with marked x-degree i and y-degree j
// (Theorem 1 with two variables).
func Eval2(t *andxor.Tree, assign Assignment2, xcap, ycap int) *Poly2 {
	idx := 0
	var walk func(n *andxor.Node) *Poly2
	walk = func(n *andxor.Node) *Poly2 {
		switch n.Kind() {
		case andxor.KindLeaf:
			a, b := assign(idx, n.Leaf())
			idx++
			return Monomial2(a, b, xcap, ycap)
		case andxor.KindOr:
			out := NewPoly2(xcap, ycap)
			out.AddConst(n.StopProb())
			for i, c := range n.Children() {
				p := n.Probs()[i]
				child := walk(c)
				if p != 0 {
					out.AddScaled(child, p)
				}
			}
			return out
		default: // KindAnd
			out := One2(xcap, ycap)
			for _, c := range n.Children() {
				out = out.MulTrunc(walk(c))
			}
			return out
		}
	}
	return walk(t.Root())
}

// WorldSizeDist returns the distribution of possible-world sizes as a
// polynomial: Coeff(i) = Pr(|pw| = i).  This is Example 1 of the paper
// (assign the same variable x to every leaf), evaluated by the compiled
// kernel in one allocation-light bottom-up pass over a pooled buffer.
func WorldSizeDist(t *andxor.Tree) Poly {
	return compiled(t).WorldSizeDist()
}

// SubsetSizeDist returns Pr(|pw ∩ S| = i) for the leaf subset S selected by
// the predicate (Example 2 of the paper).
func SubsetSizeDist(t *andxor.Tree, inSubset func(i int, l types.Leaf) bool) Poly {
	return Eval1(t, func(i int, l types.Leaf) int {
		if inSubset(i, l) {
			return 1
		}
		return 0
	}, -1).Trim(0)
}

// CoOccurrence returns the probability that all leaves in the given index
// set are simultaneously present: the coefficient of x^|S| after marking
// exactly those leaves with x.
func CoOccurrence(t *andxor.Tree, leafIdx map[int]bool) float64 {
	m := len(leafIdx)
	p := Eval1(t, func(i int, l types.Leaf) int {
		if leafIdx[i] {
			return 1
		}
		return 0
	}, m)
	return p.Coeff(m)
}

// AllAbsent returns the probability that none of the keys in the given set
// have any alternative present: the constant coefficient after marking
// every alternative of those keys with x.
func AllAbsent(t *andxor.Tree, keys map[string]bool) float64 {
	p := Eval1(t, func(i int, l types.Leaf) int {
		if keys[l.Key] {
			return 1
		}
		return 0
	}, 0)
	return p.Coeff(0)
}
