package genfunc

// This file is the compiled kernel's half of the mutation path.  A
// Tree.Apply produces an andxor.Delta; Program.Apply consumes it, either
// patching the instruction weights (and every pooled arena) in place —
// weight-only deltas: probability updates and evidence conditioning — or
// recompiling when the leaf set changed (insert/delete).
//
// The weight patch is bit-identical to a cold recompile by construction:
// the Delta carries the exact float64 values a cold Compile of the mutated
// tree would read back from the nodes, and compile.go records where each
// leaf-adjacent edge weight (leafEdge/leafEdgeB) and each group's stop
// constant (leafGroup) landed in the instruction array.  Writing those
// slots makes the instruction array bitwise identical to the cold one, and
// since every instruction's arena value is a pure function of its
// children, re-evaluating the changed instructions and their ancestors
// lands every arena on the cold program's state too.

import (
	"sync"
	"weak"

	"consensus/internal/andxor"
)

// Apply brings p up to date with a mutation already applied to t (the tree
// p was compiled from) and returns the current program.  Weight-only
// deltas patch p in place and return (p, true, changed), where changed is
// the dirty instruction set — the ids whose fields actually moved; callers
// repairing cached results off p (RepairRanks, RepairWorldSize) key on it.
// Structural deltas recompile and return (Compile(t), false, nil).  Apply
// requires exclusive access to p: no evaluation may run concurrently (the
// engine serializes mutations against queries per tree).
func (p *Program) Apply(t *andxor.Tree, d *andxor.Delta) (*Program, bool, []int32) {
	if d == nil || d.Structural {
		np := Compile(t)
		// Refresh the package-level memo (if the tree is in it) so the
		// package-level evaluators agree with the recompiled program.
		wp := weak.Make(t)
		if _, ok := progCache.Load(wp); ok {
			progCache.Store(wp, np)
		}
		return np, false, nil
	}
	changed := p.patchWeights(d)
	// Weight changes can flip the score-validity verdict: whether two tied
	// alternatives of different keys co-occur with positive probability
	// depends on the edge weights.
	p.valMu.Lock()
	p.valDone = false
	p.valErr = nil
	p.valMu.Unlock()
	if len(changed) > 0 {
		p.patchArenas(changed)
	}
	return p, true, changed
}

// ApplyAll brings p up to date with a batch of mutations already applied
// to t (in order), amortizing the per-delta costs: the weight patches of
// the whole batch accumulate into one dirty instruction set, the
// score-validation verdict resets once and every pooled arena is repaired
// once, instead of per update.  A structural delta anywhere in the batch
// recompiles once, covering the whole batch (the tree already carries
// every update).  The return contract matches Apply, with changed the
// union of the batch's dirty instruction sets.
func (p *Program) ApplyAll(t *andxor.Tree, ds []*andxor.Delta) (*Program, bool, []int32) {
	for _, d := range ds {
		if d == nil || d.Structural {
			return p.Apply(t, d)
		}
	}
	if len(ds) == 0 {
		return p, true, nil
	}
	var changed []int32
	for _, d := range ds {
		for _, id := range p.patchWeights(d) {
			dup := false
			for _, c := range changed {
				if c == id {
					dup = true
					break
				}
			}
			if !dup {
				changed = append(changed, id)
			}
		}
	}
	p.valMu.Lock()
	p.valDone = false
	p.valErr = nil
	p.valMu.Unlock()
	if len(changed) > 0 {
		p.patchArenas(changed)
	}
	return p, true, changed
}

// RepairRanks brings a previously computed rank distribution up to date
// after Apply/ApplyAll reported changed as the dirty instruction set.  An
// empty changed set means the instruction array is bitwise unchanged, so
// old is still exact and returned as-is.  Otherwise every row must be
// re-derived: the root polynomial is multilinear in the mutated block's
// edge weights, so a genuine weight change moves every key's rank row, and
// the delta path's bit-identity contract (repaired results == cold
// recomputation, float for float) rules out per-row shortcuts.  The
// re-derivation runs the standard incremental descending-score sweep on
// the patched program — whose instruction array is bitwise identical to a
// cold compile of the mutated tree — so the repaired distribution equals
// the cold one exactly.
func (p *Program) RepairRanks(old *RankDist, changed []int32, workers int) (*RankDist, error) {
	if len(changed) == 0 {
		return old, nil
	}
	return p.RanksParallel(old.K, workers)
}

// RepairWorldSize is RepairRanks' analogue for a cached world-size
// distribution: an empty changed set returns old unchanged, otherwise the
// distribution is re-derived through the persistent size buffer, which
// re-evaluates only the dirty instructions and their ancestor paths (see
// WorldSizeDist) — the same dirty-path walk arenas use, at a fraction of a
// full bottom-up pass.
func (p *Program) RepairWorldSize(old Poly, changed []int32) Poly {
	if len(changed) == 0 {
		return old
	}
	return p.WorldSizeDist()
}

// patchWeights writes the delta's edge probabilities and stop mass into
// the instruction array and returns the ids of the instructions whose
// fields actually changed.  Values are written unconditionally (the Delta
// holds exactly the floats a cold compile reads), but unchanged
// instructions are not reported so arenas skip re-evaluation entirely for
// no-op updates.
func (p *Program) patchWeights(d *andxor.Delta) []int32 {
	changed := make([]int32, 0, len(d.Leaves)+1)
	mark := func(id int32) {
		for _, c := range changed {
			if c == id {
				return
			}
		}
		changed = append(changed, id)
	}
	for i, li := range d.Leaves {
		id := p.leafEdge[li]
		if id < 0 {
			// Weight deltas only describe leaf-adjacent or-edges
			// (andxor.Tree.Apply enforces it), so every listed leaf has a
			// recorded placement.
			panic("genfunc: weight delta for a leaf without an or-edge")
		}
		in := &p.insts[id]
		if p.leafEdgeB[li] {
			if in.wb != d.Probs[i] {
				mark(id)
			}
			in.wb = d.Probs[i]
		} else {
			if in.wa != d.Probs[i] {
				mark(id)
			}
			in.wa = d.Probs[i]
		}
	}
	if len(d.Leaves) > 0 {
		gid := p.leafGroup[d.Leaves[0]]
		in := &p.insts[gid]
		if in.c != d.Stop {
			mark(gid)
		}
		in.c = d.Stop
	}
	if len(changed) > 0 {
		// Invalidate the persistent world-size buffer's rows for the next
		// WorldSizeDist, which repairs them along their root paths.
		p.sizeMu.Lock()
		p.sizeDirty = append(p.sizeDirty, changed...)
		p.sizeMu.Unlock()
	}
	return changed
}

// patchArenas re-evaluates every pooled arena under the patched weights:
// each arena is drained from its pool, reset to the all-zero assignment,
// re-evaluated along the changed instructions' root paths, re-snapshotted,
// and returned to the pool.  Instructions outside those paths have values
// identical under old and new weights (pure functions of unchanged
// inputs), so the patched arena is bit-identical to a freshly built one.
func (p *Program) patchArenas(changed []int32) {
	p.poolMu.Lock()
	pools := make([]*sync.Pool, 0, len(p.pools))
	for _, pool := range p.pools {
		pools = append(pools, pool)
	}
	p.poolMu.Unlock()
	for _, pool := range pools {
		var ars []*arena
		for {
			v := pool.Get()
			if v == nil {
				break
			}
			ars = append(ars, v.(*arena))
		}
		for _, ar := range ars {
			ar.patchWeights(changed)
			pool.Put(ar)
		}
	}
}
