package genfunc

// This file is the compiled kernel's half of the mutation path.  A
// Tree.Apply produces an andxor.Delta; Program.Apply consumes it, either
// patching the instruction weights (and every pooled arena) in place —
// weight-only deltas: probability updates and evidence conditioning — or
// recompiling when the leaf set changed (insert/delete).
//
// The weight patch is bit-identical to a cold recompile by construction:
// the Delta carries the exact float64 values a cold Compile of the mutated
// tree would read back from the nodes, and compile.go records where each
// leaf-adjacent edge weight (leafEdge/leafEdgeB) and each group's stop
// constant (leafGroup) landed in the instruction array.  Writing those
// slots makes the instruction array bitwise identical to the cold one, and
// since every instruction's arena value is a pure function of its
// children, re-evaluating the changed instructions and their ancestors
// lands every arena on the cold program's state too.

import (
	"sync"
	"weak"

	"consensus/internal/andxor"
)

// Apply brings p up to date with a mutation already applied to t (the tree
// p was compiled from) and returns the current program.  Weight-only
// deltas patch p in place and return (p, true); structural deltas
// recompile and return (Compile(t), false).  Apply requires exclusive
// access to p: no evaluation may run concurrently (the engine serializes
// mutations against queries per tree).
func (p *Program) Apply(t *andxor.Tree, d *andxor.Delta) (*Program, bool) {
	if d == nil || d.Structural {
		np := Compile(t)
		// Refresh the package-level memo (if the tree is in it) so the
		// package-level evaluators agree with the recompiled program.
		wp := weak.Make(t)
		if _, ok := progCache.Load(wp); ok {
			progCache.Store(wp, np)
		}
		return np, false
	}
	changed := p.patchWeights(d)
	// Weight changes can flip the score-validity verdict: whether two tied
	// alternatives of different keys co-occur with positive probability
	// depends on the edge weights.
	p.valMu.Lock()
	p.valDone = false
	p.valErr = nil
	p.valMu.Unlock()
	if len(changed) > 0 {
		p.patchArenas(changed)
	}
	return p, true
}

// patchWeights writes the delta's edge probabilities and stop mass into
// the instruction array and returns the ids of the instructions whose
// fields actually changed.  Values are written unconditionally (the Delta
// holds exactly the floats a cold compile reads), but unchanged
// instructions are not reported so arenas skip re-evaluation entirely for
// no-op updates.
func (p *Program) patchWeights(d *andxor.Delta) []int32 {
	changed := make([]int32, 0, len(d.Leaves)+1)
	mark := func(id int32) {
		for _, c := range changed {
			if c == id {
				return
			}
		}
		changed = append(changed, id)
	}
	for i, li := range d.Leaves {
		id := p.leafEdge[li]
		if id < 0 {
			// Weight deltas only describe leaf-adjacent or-edges
			// (andxor.Tree.Apply enforces it), so every listed leaf has a
			// recorded placement.
			panic("genfunc: weight delta for a leaf without an or-edge")
		}
		in := &p.insts[id]
		if p.leafEdgeB[li] {
			if in.wb != d.Probs[i] {
				mark(id)
			}
			in.wb = d.Probs[i]
		} else {
			if in.wa != d.Probs[i] {
				mark(id)
			}
			in.wa = d.Probs[i]
		}
	}
	if len(d.Leaves) > 0 {
		gid := p.leafGroup[d.Leaves[0]]
		in := &p.insts[gid]
		if in.c != d.Stop {
			mark(gid)
		}
		in.c = d.Stop
	}
	return changed
}

// patchArenas re-evaluates every pooled arena under the patched weights:
// each arena is drained from its pool, reset to the all-zero assignment,
// re-evaluated along the changed instructions' root paths, re-snapshotted,
// and returned to the pool.  Instructions outside those paths have values
// identical under old and new weights (pure functions of unchanged
// inputs), so the patched arena is bit-identical to a freshly built one.
func (p *Program) patchArenas(changed []int32) {
	p.poolMu.Lock()
	pools := make([]*sync.Pool, 0, len(p.pools))
	for _, pool := range p.pools {
		pools = append(pools, pool)
	}
	p.poolMu.Unlock()
	for _, pool := range pools {
		var ars []*arena
		for {
			v := pool.Get()
			if v == nil {
				break
			}
			ars = append(ars, v.(*arena))
		}
		for _, ar := range ars {
			ar.patchWeights(changed)
			pool.Put(ar)
		}
	}
}
