//go:build !race

package genfunc

const raceEnabled = false
