package genfunc

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/types"
)

// assertProgramsAgree pins a patched program to a cold compile of the same
// (mutated) tree: the instruction arrays must be bitwise identical, and
// every kernel statistic must agree EXACTLY (float64 ==, not a tolerance)
// — the delta path's contract is bit-identity with re-registration, not
// mere numerical closeness.
func assertProgramsAgree(t *testing.T, tr *andxor.Tree, got *Program, label string) {
	t.Helper()
	want := Compile(tr)
	if !reflect.DeepEqual(got.insts, want.insts) {
		t.Fatalf("%s: patched instruction array differs from cold compile", label)
	}
	k := tr.NumLeaves()
	if k > 6 {
		k = 6
	}
	gr, gerr := got.Ranks(k)
	wr, werr := want.Ranks(k)
	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: Ranks error mismatch: patched %v, cold %v", label, gerr, werr)
	}
	if gerr == nil {
		if !reflect.DeepEqual(gr.eq, wr.eq) || !reflect.DeepEqual(gr.le, wr.le) {
			t.Fatalf("%s: RankDist differs from cold compile", label)
		}
		ge, _ := got.ExpectedRank()
		we, _ := want.ExpectedRank()
		if !reflect.DeepEqual(ge, we) {
			t.Fatalf("%s: ExpectedRank differs: patched %v, cold %v", label, ge, we)
		}
	}
	if gs, ws := got.WorldSizeDist(), want.WorldSizeDist(); !reflect.DeepEqual(gs, ws) {
		t.Fatalf("%s: WorldSizeDist differs: patched %v, cold %v", label, gs, ws)
	}
	if keys := tr.Keys(); len(keys) >= 2 {
		if gp, wp := got.Precedence(keys[0], keys[1]), want.Precedence(keys[0], keys[1]); gp != wp {
			t.Fatalf("%s: Precedence differs: patched %v, cold %v", label, gp, wp)
		}
	}
}

// randomUpdate draws one update against the tree's current leaves; invalid
// draws (budget overruns, zero-probability evidence, non-leaf blocks) are
// rejected by Tree.Apply and simply skipped by the callers.
func randomUpdate(rng *rand.Rand, tr *andxor.Tree) andxor.Update {
	alts := tr.LeafAlternatives()
	a := alts[rng.Intn(len(alts))]
	switch rng.Intn(7) {
	case 0:
		return andxor.Update{Kind: andxor.UpdateSetProb, Key: a.Key, Score: a.Score, Prob: rng.Float64()}
	case 1:
		return andxor.Update{Kind: andxor.UpdateSetProb, Key: a.Key, Score: a.Score, Prob: rng.Float64(), Renormalize: true}
	case 2:
		return andxor.Update{Kind: andxor.UpdateInsert, Key: a.Key, Score: 1000 + rng.Float64()*1000, Prob: rng.Float64() * 0.2, Label: "inserted"}
	case 3:
		return andxor.Update{Kind: andxor.UpdateDelete, Key: a.Key, Score: a.Score}
	case 4:
		return andxor.Update{Kind: andxor.EvidencePresent, Key: a.Key}
	case 5:
		return andxor.Update{Kind: andxor.EvidenceAbsent, Key: a.Key}
	default:
		return andxor.Update{Kind: andxor.EvidenceChoose, Key: a.Key, Score: a.Score}
	}
}

// TestApplyFixedDeltas walks a hand-picked update sequence over a small
// BID tree, checking bit-identity with a cold compile after every step.
func TestApplyFixedDeltas(t *testing.T) {
	tr, err := andxor.BID([]andxor.Block{
		{Alternatives: []types.Leaf{{Key: "t1", Score: 8}, {Key: "t1", Score: 2}}, Probs: []float64{0.5, 0.3}},
		{Alternatives: []types.Leaf{{Key: "t2", Score: 6}}, Probs: []float64{0.6}},
		{Alternatives: []types.Leaf{{Key: "t3", Score: 4}, {Key: "t3", Score: 1}}, Probs: []float64{0.25, 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Compile(tr)
	steps := []andxor.Update{
		{Kind: andxor.UpdateSetProb, Key: "t1", Score: 8, Prob: 0.1},
		{Kind: andxor.UpdateSetProb, Key: "t1", Score: 2, Prob: 0.8, Renormalize: true},
		{Kind: andxor.EvidencePresent, Key: "t3"},
		{Kind: andxor.EvidenceAbsent, Key: "t2"},
		{Kind: andxor.UpdateInsert, Key: "t2", Score: 9, Prob: 0.5, Label: "late"},
		{Kind: andxor.EvidenceChoose, Key: "t3", Score: 4},
		{Kind: andxor.UpdateDelete, Key: "t1", Score: 2},
	}
	for i, u := range steps {
		d, err := tr.Apply(u)
		if err != nil {
			t.Fatalf("step %d (%s %s): %v", i, u.Kind, u.Key, err)
		}
		np, patched, _ := p.Apply(tr, d)
		if patched != !d.Structural {
			t.Fatalf("step %d: patched = %v for structural = %v", i, patched, d.Structural)
		}
		if patched && np != p {
			t.Fatalf("step %d: weight-only delta returned a different program", i)
		}
		p = np
		assertProgramsAgree(t, tr, p, fmt.Sprintf("step %d (%s %s)", i, u.Kind, u.Key))
	}
}

// TestApplyRandomUpdateStreams drives long random update streams over the
// workload families (independent, block-disjoint, nested correlations),
// maintaining one program through Apply and differencing it against cold
// compiles along the way.
func TestApplyRandomUpdateStreams(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		for _, n := range []int{3, 8, 20} {
			seed := int64(1000*shape + n)
			rng := rand.New(rand.NewSource(seed))
			tr := testTree(shape, int(seed), n, 3)
			p := Compile(tr)
			applied := 0
			for step := 0; step < 40; step++ {
				u := randomUpdate(rng, tr)
				d, err := tr.Apply(u)
				if err != nil {
					continue // invalid draw; tree untouched by contract
				}
				applied++
				p, _, _ = p.Apply(tr, d)
				if applied%7 == 0 {
					assertProgramsAgree(t, tr, p, fmt.Sprintf("shape %d n %d step %d", shape, n, step))
				}
			}
			if applied == 0 {
				t.Fatalf("shape %d n %d: no update applied", shape, n)
			}
			assertProgramsAgree(t, tr, p, fmt.Sprintf("shape %d n %d final", shape, n))
		}
	}
}

// TestApplyPatchesPooledArenas warms every arena shape the kernels pool
// (rank (k-1,1), expected-rank (1,1), precedence (0,1), validation (2,0),
// world-size scratch), then mutates and checks the recycled arenas produce
// bit-identical results — the pooled snapshots must be re-evaluated under
// the new weights, not merely the instruction array.
func TestApplyPatchesPooledArenas(t *testing.T) {
	tr := testTree(1, 7, 12, 3)
	p := Compile(tr)
	keys := tr.Keys()
	warm := func() {
		if _, err := p.Ranks(4); err != nil {
			t.Fatal(err)
		}
		if _, err := p.ExpectedRank(); err != nil {
			t.Fatal(err)
		}
		p.WorldSizeDist()
		p.Precedence(keys[0], keys[1])
	}
	warm()
	alts := tr.LeafAlternatives()
	d, err := tr.Apply(andxor.Update{Kind: andxor.UpdateSetProb, Key: alts[0].Key, Score: alts[0].Score, Prob: 0.9, Renormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if p, _, _ = p.Apply(tr, d); p == nil {
		t.Fatal("nil program")
	}
	assertProgramsAgree(t, tr, p, "first patch with warm pools")

	// Patch again on the already-patched pools: the re-snapshotted arenas
	// must keep tracking the instruction array through repeated mutations.
	warm()
	d, err = tr.Apply(andxor.Update{Kind: andxor.EvidenceAbsent, Key: alts[0].Key})
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ = p.Apply(tr, d)
	assertProgramsAgree(t, tr, p, "second patch with warm pools")
}

// TestApplyResetsScoreValidation pins the ValidateScores cache reset: a
// cross-key tie is harmless while the tied alternatives cannot co-occur
// (one has probability 0), and must start failing once a weight update
// gives the pair positive co-occurrence probability.
func TestApplyResetsScoreValidation(t *testing.T) {
	tr, err := andxor.BID([]andxor.Block{
		{Alternatives: []types.Leaf{{Key: "a", Score: 5}}, Probs: []float64{0.5}},
		{Alternatives: []types.Leaf{{Key: "b", Score: 5}}, Probs: []float64{0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Compile(tr)
	if err := p.ValidateScores(); err != nil {
		t.Fatalf("zero-probability tie rejected: %v", err)
	}
	d, err := tr.Apply(andxor.Update{Kind: andxor.UpdateSetProb, Key: "b", Score: 5, Prob: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ = p.Apply(tr, d)
	if err := p.ValidateScores(); err == nil {
		t.Fatal("co-occurring cross-key tie accepted after weight patch")
	}
	// And back: conditioning the tie away must clear the verdict again.
	d, err = tr.Apply(andxor.Update{Kind: andxor.EvidenceAbsent, Key: "b"})
	if err != nil {
		t.Fatal(err)
	}
	p, _, _ = p.Apply(tr, d)
	if err := p.ValidateScores(); err != nil {
		t.Fatalf("tie still rejected after conditioning it away: %v", err)
	}
}

// TestRanksAllBitIdentical pins the shared-sweep multi-cutoff kernel to
// the direct per-cutoff calls: every distribution RanksAll assembles from
// the widest sweep must equal Ranks at that cutoff float for float (the
// truncation-prefix property applied per row), sequential and sharded.
func TestRanksAllBitIdentical(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		tr := testTree(shape, 31+shape, 14, 3)
		p := Compile(tr)
		ks := []int{3, 7, 1, 7, 5}
		for _, workers := range []int{1, 4} {
			rds, err := p.RanksAll(ks, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(rds) != len(ks) {
				t.Fatalf("RanksAll returned %d distributions for %d cutoffs", len(rds), len(ks))
			}
			for i, k := range ks {
				want, err := p.Ranks(k)
				if err != nil {
					t.Fatal(err)
				}
				if rds[i].K != k {
					t.Fatalf("shape %d workers %d: cutoff %d came back as K=%d", shape, workers, k, rds[i].K)
				}
				if !reflect.DeepEqual(rds[i].eq, want.eq) || !reflect.DeepEqual(rds[i].le, want.le) {
					t.Fatalf("shape %d workers %d: RanksAll cutoff %d differs from direct Ranks", shape, workers, k)
				}
			}
		}
	}
}

// TestApplyAllMatchesSequential pins the batched program patch to the
// sequential one: one ApplyAll over a batch of weight-only deltas must
// leave the program in exactly the state the per-delta Apply loop reaches,
// and both bit-identical to a cold compile of the final tree.
func TestApplyAllMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := testTree(1, 9, 10, 3)
	ctrl := tr.Clone()
	p := Compile(tr)
	cp := Compile(ctrl)

	var us []andxor.Update
	alts := tr.LeafAlternatives()
	for i := 0; i < 12; i++ {
		a := alts[rng.Intn(len(alts))]
		us = append(us, andxor.Update{Kind: andxor.UpdateSetProb, Key: a.Key, Score: a.Score, Prob: rng.Float64(), Renormalize: true})
	}

	ds, err := tr.ApplyAll(us)
	if err != nil {
		t.Fatal(err)
	}
	np, patched, changed := p.ApplyAll(tr, ds)
	if !patched || np != p {
		t.Fatalf("weight-only batch: patched=%v, new program=%v", patched, np != p)
	}
	if len(changed) == 0 {
		t.Fatal("weight-only batch reported no changed instructions")
	}

	for i, u := range us {
		d, err := ctrl.Apply(u)
		if err != nil {
			t.Fatalf("control step %d: %v", i, err)
		}
		cp, _, _ = cp.Apply(ctrl, d)
	}
	if !reflect.DeepEqual(p.insts, cp.insts) {
		t.Fatal("batched and sequential patches leave different instruction arrays")
	}
	assertProgramsAgree(t, tr, p, "ApplyAll batch")
}

// TestApplyAllStructuralRecompiles pins the batch fallback: any structural
// delta in the batch recompiles once against the final tree.
func TestApplyAllStructuralRecompiles(t *testing.T) {
	tr := testTree(1, 5, 8, 3)
	p := Compile(tr)
	alts := tr.LeafAlternatives()
	ds, err := tr.ApplyAll([]andxor.Update{
		{Kind: andxor.UpdateSetProb, Key: alts[0].Key, Score: alts[0].Score, Prob: 0.4},
		{Kind: andxor.UpdateInsert, Key: alts[1].Key, Score: 2000, Prob: 0.1, Label: "late"},
	})
	if err != nil {
		t.Fatal(err)
	}
	np, patched, changed := p.ApplyAll(tr, ds)
	if patched {
		t.Fatal("structural batch reported patched")
	}
	if changed != nil {
		t.Fatalf("structural batch reported changed instructions %v", changed)
	}
	assertProgramsAgree(t, tr, np, "structural batch recompile")
}

// TestRepairReusesResultsOnNoOp pins the cheap half of the repair
// contract: an empty dirty set means the instruction array is bitwise
// unchanged, so RepairRanks/RepairWorldSize hand back the original results
// without recomputation (pointer/backing-array identity, not just value
// equality).
func TestRepairReusesResultsOnNoOp(t *testing.T) {
	tr := testTree(0, 3, 6, 3)
	p := Compile(tr)
	alts := tr.LeafAlternatives()
	set := andxor.Update{Kind: andxor.UpdateSetProb, Key: alts[0].Key, Score: alts[0].Score, Prob: 0.37}
	if d, err := tr.Apply(set); err != nil {
		t.Fatal(err)
	} else {
		p, _, _ = p.Apply(tr, d)
	}
	old, err := p.Ranks(4)
	if err != nil {
		t.Fatal(err)
	}
	oldSize := p.WorldSizeDist()

	// Re-assert the probability the alternative already has: a no-op.
	d, err := tr.Apply(set)
	if err != nil {
		t.Fatal(err)
	}
	_, patched, changed := p.Apply(tr, d)
	if !patched || len(changed) != 0 {
		t.Fatalf("no-op update: patched=%v changed=%v", patched, changed)
	}
	got, err := p.RepairRanks(old, changed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != old {
		t.Fatal("RepairRanks recomputed on an empty dirty set")
	}
	if gs := p.RepairWorldSize(oldSize, changed); len(gs) != len(oldSize) || (len(gs) > 0 && &gs[0] != &oldSize[0]) {
		t.Fatal("RepairWorldSize recomputed on an empty dirty set")
	}
}

// TestRepairMatchesCold pins the expensive half: after a genuine weight
// change, the repaired rank and world-size distributions equal a cold
// compile of the mutated tree float for float, across all three workload
// shapes and both worker counts.
func TestRepairMatchesCold(t *testing.T) {
	for shape := 0; shape < 3; shape++ {
		tr := testTree(shape, 17+shape, 12, 3)
		p := Compile(tr)
		alts := tr.LeafAlternatives()
		old, err := p.Ranks(5)
		if err != nil {
			t.Fatal(err)
		}
		oldSize := p.WorldSizeDist()
		d, err := tr.Apply(andxor.Update{Kind: andxor.UpdateSetProb, Key: alts[0].Key, Score: alts[0].Score, Prob: 0.31, Renormalize: true})
		if err != nil {
			t.Fatal(err)
		}
		_, patched, changed := p.Apply(tr, d)
		if !patched || len(changed) == 0 {
			t.Fatalf("shape %d: patched=%v changed=%v", shape, patched, changed)
		}
		cold := Compile(tr)
		for _, workers := range []int{1, 4} {
			got, err := p.RepairRanks(old, changed, workers)
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.Ranks(old.K)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.eq, want.eq) || !reflect.DeepEqual(got.le, want.le) {
				t.Fatalf("shape %d workers %d: repaired RankDist differs from cold compile", shape, workers)
			}
		}
		if got, want := p.RepairWorldSize(oldSize, changed), cold.WorldSizeDist(); !reflect.DeepEqual(got, want) {
			t.Fatalf("shape %d: repaired WorldSizeDist differs from cold compile", shape)
		}
	}
}

// FuzzApplyDelta fuzzes (seed, shape, stream length) over the workload
// families, differencing the maintained program against a cold compile at
// the end of each stream.
func FuzzApplyDelta(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(5))
	f.Add(int64(42), uint8(1), uint8(12))
	f.Add(int64(7), uint8(2), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, shape, steps uint8) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(uint64(seed)%17)
		tr := testTree(int(shape%3), int(uint64(seed)%1000), n, 3)
		p := Compile(tr)
		for i := 0; i < int(steps%32); i++ {
			d, err := tr.Apply(randomUpdate(rng, tr))
			if err != nil {
				continue
			}
			p, _, _ = p.Apply(tr, d)
		}
		assertProgramsAgree(t, tr, p, "fuzz stream end")
	})
}
