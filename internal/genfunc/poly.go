// Package genfunc implements the generating-function framework of
// Section 3.3 of the paper.
//
// Every probability the consensus algorithms need — world-size
// distributions, rank distributions Pr(r(t)=i), pairwise precedence
// probabilities Pr(r(ti)<r(tj)), co-occurrence and co-label probabilities —
// is the coefficient of some monomial in a polynomial computed bottom-up
// over the and/xor tree (Theorem 1): leaves contribute their assigned
// variable, or-nodes take probability-weighted sums plus the stop
// probability, and and-nodes take products.
//
// What makes the Section 5 algorithms polynomial is truncation: rank
// computations only ever need x-degrees up to k, so products are truncated
// at a degree cap and each node costs O(cap) per coefficient instead of
// materializing degrees up to n.
//
// # Compiled incremental kernel
//
// Two evaluators implement Theorem 1.  Eval1/Eval2 are the legacy
// recursive evaluators: one closure-driven tree walk per generating
// function, allocating a fresh polynomial at every node.  They remain the
// readable reference implementation (and the oracle for the differential
// tests).  All batched statistics — Ranks, RanksParallel, Precedence,
// PrecedenceMatrix, WorldSizeDist — instead run on the compiled kernel:
//
//   - Compile flattens the tree into a postorder instruction array with
//     binarized fan-ins (compile.go), so a leaf-to-root path has length
//     O(depth·log fan-in) and evaluation is an index-addressed loop
//     instead of pointer-chasing recursion.  Compilation itself is
//     memoized per tree in a weak-keyed cache, so the package-level
//     evaluators never recompile a live tree.
//
//   - An evaluation arena (arena.go) preallocates one truncated-polynomial
//     slot per instruction and rewrites slots in place; steady-state
//     evaluation allocates nothing.  Rows are dense within per-row
//     effective lengths: products cost O(len_a·len_b) like the legacy
//     size-matched polynomials, while the stored coefficients inside a
//     row are multiplied unconditionally — no per-element zero branch —
//     so the truncated convolution (conv.go) runs as fixed-stride 4-wide
//     accumulator blocks with the operand window held in registers, plus
//     straight-line kernels for one/two/three-coefficient operands.
//     Every kernel accumulates each output in ascending operand order,
//     which makes a truncated evaluation bit-identical to the prefix of a
//     wider one (the property the engine's cutoff-reuse depends on).
//     Arenas with x-cap 0 and y-cap 1 — every precedence sweep — store
//     two scalars per instruction and evaluate with straight-line
//     dual-number arithmetic, no length bookkeeping at all.
//
//   - Arenas and scratch rows are pooled per Program (one sync.Pool per
//     (xcap, ycap) shape): warm evaluations — repeated engine queries,
//     RanksParallel worker shards, consecutive precedence sweeps — reuse
//     them with zero heap allocations; a rank batch allocates only its
//     returned RankDist (one struct plus two flat rows).  Resetting a
//     recycled arena is incremental for lightly marked ones and a
//     snapshot copy for heavily marked ones, landing on bit-identical
//     state either way.
//
//   - The batched kernels (kernel.go) walk alternatives in descending
//     score order: consecutive assignments differ only in the moving
//     y-mark, the few leaves crossing the score threshold, and the two
//     same-key exclusion sets, so each step re-evaluates only the dirty
//     root paths.  Rank distributions drop from O(n·|tree|·k) per batch to
//     O(n·depth·log(fan-in)·k²) coefficient work, and a full precedence
//     matrix costs one sweep per column instead of one tree pass per cell.
//
//   - ExpectedRank (rank.go) runs on dual-number x-rows (leaves assigned
//     1+x at x-cap 1, so the root's x¹ coefficient is an expected count):
//     one descending-score sweep accumulates the present-part term and
//     one more incremental sweep — flipping each key's alternatives to
//     the y-mark in turn — the absent-size term, for O(n·depth·log
//     fan-in) total, independent of any rank cutoff.  ValidateScores
//     batches all tied-pair co-occurrence checks onto a single arena at
//     caps (2, 0) — two leaf-path updates per pair instead of a full
//     recursive pass — iterating tie groups in descending-score order so
//     the reported offending pair is deterministic; the verdict is cached
//     on the Program.
package genfunc

// Poly is a dense univariate polynomial; Poly[i] is the coefficient of x^i.
type Poly []float64

// NewPoly returns the zero polynomial with capacity for degrees 0..deg.
func NewPoly(deg int) Poly { return make(Poly, deg+1) }

// One returns the constant polynomial 1.
func One() Poly {
	return Poly{1}
}

// Coeff returns the coefficient of x^i (0 beyond the stored degree).
func (p Poly) Coeff(i int) float64 {
	if i < 0 || i >= len(p) {
		return 0
	}
	return p[i]
}

// Add returns p+q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := NewPoly(n - 1)
	copy(out, p)
	for i, c := range q {
		out[i] += c
	}
	return out
}

// AddScaled adds s*q into p in place, growing p as needed, and returns the
// (possibly reallocated) result.
func (p Poly) AddScaled(q Poly, s float64) Poly {
	if len(q) > len(p) {
		grown := NewPoly(len(q) - 1)
		copy(grown, p)
		p = grown
	}
	for i, c := range q {
		p[i] += s * c
	}
	return p
}

// MulTrunc returns p*q with all terms of degree greater than cap dropped.
// cap < 0 means no truncation.
func (p Poly) MulTrunc(q Poly, cap int) Poly {
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	deg := len(p) + len(q) - 2
	if cap >= 0 && deg > cap {
		deg = cap
	}
	out := NewPoly(deg)
	for i, a := range p {
		if a == 0 || i > deg {
			continue
		}
		hi := deg - i
		for j, b := range q {
			if j > hi {
				break
			}
			out[i+j] += a * b
		}
	}
	return out
}

// Sum returns the sum of coefficients, i.e. the polynomial evaluated at 1.
// For a complete (untruncated) probability generating function this is 1.
func (p Poly) Sum() float64 {
	s := 0.0
	for _, c := range p {
		s += c
	}
	return s
}

// Trim drops trailing zero coefficients (within eps) and returns the result.
func (p Poly) Trim(eps float64) Poly {
	n := len(p)
	for n > 1 && p[n-1] >= -eps && p[n-1] <= eps {
		n--
	}
	return p[:n]
}

// Poly2 is a dense bivariate polynomial truncated at x-degree xcap and
// y-degree ycap.  Coefficients are stored row-major: c[i*(ycap+1)+j] is the
// coefficient of x^i y^j.
type Poly2 struct {
	xcap, ycap int
	c          []float64
}

// NewPoly2 returns the zero polynomial with the given truncation caps.
func NewPoly2(xcap, ycap int) *Poly2 {
	return &Poly2{xcap: xcap, ycap: ycap, c: make([]float64, (xcap+1)*(ycap+1))}
}

// One2 returns the constant polynomial 1 with the given caps.
func One2(xcap, ycap int) *Poly2 {
	p := NewPoly2(xcap, ycap)
	p.c[0] = 1
	return p
}

// Monomial2 returns x^a y^b with the given caps; degrees beyond the caps
// yield the zero polynomial.
func Monomial2(a, b, xcap, ycap int) *Poly2 {
	p := NewPoly2(xcap, ycap)
	if a <= xcap && b <= ycap {
		p.c[a*(ycap+1)+b] = 1
	}
	return p
}

// Coeff returns the coefficient of x^i y^j.
func (p *Poly2) Coeff(i, j int) float64 {
	if i < 0 || j < 0 || i > p.xcap || j > p.ycap {
		return 0
	}
	return p.c[i*(p.ycap+1)+j]
}

// SetCoeff sets the coefficient of x^i y^j; out-of-cap indices panic.
func (p *Poly2) SetCoeff(i, j int, v float64) {
	p.c[i*(p.ycap+1)+j] = v
}

// AddScaled adds s*q into p in place.  Caps must match.
func (p *Poly2) AddScaled(q *Poly2, s float64) {
	if p.xcap != q.xcap || p.ycap != q.ycap {
		panic("genfunc: Poly2 cap mismatch")
	}
	for i, c := range q.c {
		p.c[i] += s * c
	}
}

// AddConst adds the scalar s to the constant term.
func (p *Poly2) AddConst(s float64) { p.c[0] += s }

// MulTrunc returns p*q truncated at p's caps.  Caps must match.
func (p *Poly2) MulTrunc(q *Poly2) *Poly2 {
	if p.xcap != q.xcap || p.ycap != q.ycap {
		panic("genfunc: Poly2 cap mismatch")
	}
	out := NewPoly2(p.xcap, p.ycap)
	w := p.ycap + 1
	for i := 0; i <= p.xcap; i++ {
		for j := 0; j <= p.ycap; j++ {
			a := p.c[i*w+j]
			if a == 0 {
				continue
			}
			for k := 0; i+k <= p.xcap; k++ {
				row := q.c[k*w:]
				orow := out.c[(i+k)*w:]
				for l := 0; j+l <= p.ycap; l++ {
					b := row[l]
					if b != 0 {
						orow[j+l] += a * b
					}
				}
			}
		}
	}
	return out
}

// Sum returns the polynomial evaluated at x=y=1.
func (p *Poly2) Sum() float64 {
	s := 0.0
	for _, c := range p.c {
		s += c
	}
	return s
}
