package topk

import (
	"fmt"
	"math/rand"
	"sort"

	"consensus/internal/andxor"
	"consensus/internal/exact"
	"consensus/internal/genfunc"
)

// This file implements the prior top-k ranking semantics the paper's
// introduction surveys (Soliman et al.'s U-top-k, Hua et al.'s PT-k,
// Zhang-Chomicki's global top-k, Cormode et al.'s expected rank, and the
// naive expected-score ranking).  Experiment E15 compares all of them to
// the consensus answers under the paper's expected-distance yardstick:
// Theorem 3 implies the mean answer dominates every other list under
// E[d_Delta].

// PTk returns the probabilistic-threshold top-k answer: every tuple with
// Pr(r(t) <= k) >= threshold, ordered by that probability (descending,
// ties by key).  Section 5.2 observes that choosing the threshold so that
// exactly k tuples qualify recovers the mean answer under d_Delta.
func PTk(t *andxor.Tree, k int, threshold float64) (List, error) {
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, err
	}
	var out List
	for _, key := range rd.Keys() {
		if rd.PrTopK(key) >= threshold {
			out = append(out, key)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := rd.PrTopK(out[i]), rd.PrTopK(out[j])
		if pi != pj {
			return pi > pj
		}
		return out[i] < out[j]
	})
	return out, nil
}

// GlobalTopK returns the global top-k answer: the k tuples with the
// largest Pr(r(t) <= k).  This coincides with the mean answer of
// Theorem 3 (the paper's point: the consensus framework explains why this
// previously ad-hoc semantics is distinguished under d_Delta).
func GlobalTopK(t *andxor.Tree, k int) (List, error) {
	tau, _, err := MeanSymDiff(t, k)
	return tau, err
}

// UTopK returns the U-top-k answer: the single top-k list with the highest
// total probability of being the top-k answer of a random world.  This
// implementation enumerates the world distribution, so it is exponential
// in general; pass limit 0 for the enumeration default.
func UTopK(t *andxor.Tree, k int, limit int) (List, float64, error) {
	ws, err := exact.Enumerate(t, limit)
	if err != nil {
		return nil, 0, err
	}
	probs := map[string]float64{}
	rep := map[string]List{}
	for _, ww := range ws {
		tau := FromWorld(ww.World, k)
		key := fingerprint(tau)
		probs[key] += ww.Prob
		rep[key] = tau
	}
	bestKey, bestP := "", -1.0
	for key, p := range probs {
		if p > bestP || (p == bestP && key < bestKey) {
			bestKey, bestP = key, p
		}
	}
	return rep[bestKey], bestP, nil
}

// UTopKSampled estimates the U-top-k answer by sampling worlds; it trades
// exactness for applicability to large trees.
func UTopKSampled(t *andxor.Tree, k, samples int, rng *rand.Rand) (List, float64, error) {
	if samples <= 0 {
		return nil, 0, fmt.Errorf("topk: samples must be positive")
	}
	counts := map[string]int{}
	rep := map[string]List{}
	for i := 0; i < samples; i++ {
		tau := FromWorld(t.Sample(rng), k)
		key := fingerprint(tau)
		counts[key]++
		rep[key] = tau
	}
	bestKey, bestC := "", -1
	for key, c := range counts {
		if c > bestC || (c == bestC && key < bestKey) {
			bestKey, bestC = key, c
		}
	}
	return rep[bestKey], float64(bestC) / float64(samples), nil
}

// ExpectedRankTopK ranks tuples by Cormode et al.'s expected rank
// (ascending) and returns the first k.  The statistic runs on genfunc's
// compiled dual-number kernel (one incremental sweep per term, no
// cutoff-n rank distribution), so this baseline now costs about as much
// as a single rank-distribution batch at k=2.
func ExpectedRankTopK(t *andxor.Tree, k int) (List, error) {
	er, err := genfunc.ExpectedRank(t)
	if err != nil {
		return nil, err
	}
	keys := append([]string(nil), t.Keys()...)
	sort.SliceStable(keys, func(i, j int) bool {
		if er[keys[i]] != er[keys[j]] {
			return er[keys[i]] < er[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return List(keys), nil
}

// ExpectedScoreTopK ranks tuples by expected score contribution
// sum_alternatives Pr(alt) * score(alt) (absent worlds contribute 0) and
// returns the first k: the simplest baseline that ignores rank semantics
// entirely.
func ExpectedScoreTopK(t *andxor.Tree, k int) List {
	es := map[string]float64{}
	probs := t.MarginalProbs()
	for i, l := range t.LeafAlternatives() {
		es[l.Key] += probs[i] * l.Score
	}
	keys := append([]string(nil), t.Keys()...)
	sort.SliceStable(keys, func(i, j int) bool {
		if es[keys[i]] != es[keys[j]] {
			return es[keys[i]] > es[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return List(keys)
}

func fingerprint(l List) string {
	out := ""
	for _, t := range l {
		out += t + "\x00"
	}
	return out
}
