package topk

import (
	"sort"

	"consensus/internal/andxor"
	"consensus/internal/assignment"
	"consensus/internal/genfunc"
)

// ExpectedIntersection returns E[d_I(tau, tau_pw)] in closed form from a
// rank distribution (Section 5.3): the intersection metric is the average
// over prefixes i of the normalized symmetric difference between the
// i-prefixes, and each prefix term rewrites exactly as in Theorem 3 with
// k replaced by i:
//
//	E[d_I] = (1/k) sum_{i=1..k} (1/2i) ( i + sum_t Pr(r(t)<=i)
//	                                        - 2 sum_{t in tau^i} Pr(r(t)<=i) ).
func ExpectedIntersection(rd *genfunc.RankDist, tau List, k int) float64 {
	e := 0.0
	for i := 1; i <= k; i++ {
		term := float64(i)
		for _, key := range rd.Keys() {
			term += rd.PrLE(key, i)
		}
		for j := 0; j < i && j < len(tau); j++ {
			term -= 2 * rd.PrLE(tau[j], i)
		}
		// Foreign keys in the prefix contribute Pr(r<=i)=0 and each adds
		// one certain mismatch, already counted by the +i term via the
		// membership accounting; nothing extra needed: a foreign tuple is
		// never in tau^i_pw, and the +i term is |tau^i| when the prefix is
		// full.  For short prefixes (|tau| < i) the +i overcounts.
		if len(tau) < i {
			term -= float64(i - len(tau))
		}
		e += term / (2 * float64(i))
	}
	return e / float64(k)
}

// IntersectionProfit returns the assignment profit matrix of Section 5.3:
// profit[j][t] = sum_{i=j+1..k} Pr(r(t) <= i)/i is the gain of placing
// tuple keys[t] at (1-based) position j+1.  Maximizing the total profit
// over injective position->tuple assignments minimizes E[d_I].
func IntersectionProfit(rd *genfunc.RankDist, keys []string, k int) [][]float64 {
	profit := make([][]float64, k)
	for j := 1; j <= k; j++ {
		row := make([]float64, len(keys))
		for ti, key := range keys {
			s := 0.0
			for i := j; i <= k; i++ {
				s += rd.PrLE(key, i) / float64(i)
			}
			row[ti] = s
		}
		profit[j-1] = row
	}
	return profit
}

// MeanIntersection returns the mean top-k answer under the intersection
// metric, computed exactly by solving the assignment problem of
// Section 5.3 with the Hungarian algorithm.  k is clamped to the number of
// tuples.
func MeanIntersection(t *andxor.Tree, k int) (List, *genfunc.RankDist, error) {
	if k > len(t.Keys()) {
		k = len(t.Keys())
	}
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, nil, err
	}
	tau, err := MeanIntersectionRanks(rd, k)
	return tau, rd, err
}

// MeanIntersectionRanks is MeanIntersection on a precomputed rank
// distribution with cutoff rd.K >= k.
func MeanIntersectionRanks(rd *genfunc.RankDist, k int) (List, error) {
	keys := rd.Keys()
	if k > len(keys) {
		k = len(keys)
	}
	profit := IntersectionProfit(rd, keys, k)
	rowTo, _, err := assignment.Max(profit)
	if err != nil {
		return nil, err
	}
	out := make(List, k)
	for j, ti := range rowTo {
		out[j] = keys[ti]
	}
	return out, nil
}

// UpsilonH returns the ranking-function values Upsilon_H(t) =
// sum_{i=1..k} Pr(r(t) <= i)/i for every key (Section 5.3), a special case
// of the parameterized ranking functions of the authors' earlier work.
func UpsilonH(rd *genfunc.RankDist, k int) map[string]float64 {
	out := make(map[string]float64, len(rd.Keys()))
	for _, key := range rd.Keys() {
		s := 0.0
		for i := 1; i <= k; i++ {
			s += rd.PrLE(key, i) / float64(i)
		}
		out[key] = s
	}
	return out
}

// MeanIntersectionUpsilon returns the Upsilon_H approximation to the mean
// intersection-metric answer: the k tuples with the largest Upsilon_H
// values in decreasing order.  Section 5.3 proves its objective value
// A(tau_H) is at least A(tau*) / H_k.
func MeanIntersectionUpsilon(t *andxor.Tree, k int) (List, *genfunc.RankDist, error) {
	if k > len(t.Keys()) {
		k = len(t.Keys())
	}
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, nil, err
	}
	return MeanIntersectionUpsilonRanks(rd, k), rd, nil
}

// MeanIntersectionUpsilonRanks is MeanIntersectionUpsilon on a precomputed
// rank distribution with cutoff rd.K >= k.
func MeanIntersectionUpsilonRanks(rd *genfunc.RankDist, k int) List {
	ups := UpsilonH(rd, k)
	keys := append([]string(nil), rd.Keys()...)
	sort.SliceStable(keys, func(i, j int) bool {
		if ups[keys[i]] != ups[keys[j]] {
			return ups[keys[i]] > ups[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return List(keys)
}

// IntersectionObjective returns A(tau) = sum_{i=1..k} (1/i) sum_{t in
// tau^i} Pr(r(t) <= i), the term Section 5.3 maximizes; E[d_I] is a
// constant minus A(tau)/k (up to the prefix-length correction).
func IntersectionObjective(rd *genfunc.RankDist, tau List, k int) float64 {
	a := 0.0
	for i := 1; i <= k; i++ {
		for j := 0; j < i && j < len(tau); j++ {
			a += rd.PrLE(tau[j], i) / float64(i)
		}
	}
	return a
}
