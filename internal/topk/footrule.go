package topk

import (
	"consensus/internal/andxor"
	"consensus/internal/assignment"
	"consensus/internal/genfunc"
)

// Upsilons holds the three statistics of Section 5.4, computable in
// polynomial time from the rank distribution:
//
//	Upsilon1(t) = sum_{i=1..k} Pr(r(t)=i)            = Pr(r(t) <= k)
//	Upsilon2(t) = sum_{i=1..k} i * Pr(r(t)=i)
//	Upsilon3(t,i) = sum_{j=1..k} Pr(r(t)=j)|i-j| - i * Pr(r(t) > k)
//
// Note the minus sign in Upsilon3: the paper's bullet list prints
// "+ i Pr(r(t) > k)", but the Figure 2 derivation it feeds (and the
// footrule distance itself, where a tuple of tau missing from tau_pw
// contributes (k+1) - tau(t), the (k+1) part being absorbed into the
// (k+1)|tau delta tau_pw| term) require the negative sign.  Our
// brute-force enumeration cross-check (TestExpectedFootruleMatches-
// Enumeration, experiment F2) confirms the minus sign is the correct
// reading; with "+" the closed form overestimates whenever Pr(r(t)>k) > 0.
type Upsilons struct {
	K  int
	U1 map[string]float64
	U2 map[string]float64
}

// NewUpsilons computes Upsilon1 and Upsilon2 for every key.
func NewUpsilons(rd *genfunc.RankDist, k int) *Upsilons {
	u := &Upsilons{K: k, U1: map[string]float64{}, U2: map[string]float64{}}
	for _, key := range rd.Keys() {
		s1, s2 := 0.0, 0.0
		for i := 1; i <= k; i++ {
			p := rd.PrEq(key, i)
			s1 += p
			s2 += float64(i) * p
		}
		u.U1[key] = s1
		u.U2[key] = s2
	}
	return u
}

// U3 returns Upsilon3(t, i); foreign keys get Pr(r(t) > k) = 1, i.e.
// U3 = -i.
func (u *Upsilons) U3(rd *genfunc.RankDist, key string, i int) float64 {
	s := 0.0
	for j := 1; j <= u.K; j++ {
		s += rd.PrEq(key, j) * float64(abs(i-j))
	}
	s -= float64(i) * (1 - u.U1[key])
	return s
}

// FootruleConstant returns the tau-independent constant C of the Figure 2
// derivation: C = (k+1)k + sum_t ((k+1) Upsilon1(t) - Upsilon2(t)).
func FootruleConstant(rd *genfunc.RankDist, u *Upsilons, k int) float64 {
	c := float64((k + 1) * k)
	for _, key := range rd.Keys() {
		c += float64(k+1)*u.U1[key] - u.U2[key]
	}
	return c
}

// FootruleCost returns f(t, i) = Upsilon3(t,i) + Upsilon2(t) -
// 2(k+1) Upsilon1(t), the per-placement cost of the Figure 2 rewriting;
// E[F*(tau, tau_pw)] = C + sum_i f(tau(i), i).
func FootruleCost(rd *genfunc.RankDist, u *Upsilons, key string, i int) float64 {
	return u.U3(rd, key, i) + u.U2[key] - 2*float64(u.K+1)*u.U1[key]
}

// ExpectedFootrule returns E[F*(tau, tau_pw)] in closed form via the
// Figure 2 rewriting.  It is validated against brute-force enumeration in
// the tests (experiment F2).
func ExpectedFootrule(rd *genfunc.RankDist, u *Upsilons, tau List, k int) float64 {
	e := FootruleConstant(rd, u, k)
	for i, key := range tau {
		e += FootruleCost(rd, u, key, i+1)
	}
	return e
}

// MeanFootrule returns the mean top-k answer under Spearman's footrule
// with location parameter k+1, computed exactly by the assignment problem
// of Section 5.4: position i paired with tuple t costs f(t, i), and the
// minimum-cost injective assignment minimizes the expected distance.  It
// also returns the achieved E[F*].
func MeanFootrule(t *andxor.Tree, k int) (List, float64, *genfunc.RankDist, error) {
	if k > len(t.Keys()) {
		k = len(t.Keys())
	}
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, 0, nil, err
	}
	tau, e, err := MeanFootruleRanks(rd, NewUpsilons(rd, k), k)
	return tau, e, rd, err
}

// MeanFootruleRanks is MeanFootrule on precomputed rank-distribution and
// Upsilon statistics (u must have been built with the same k after
// clamping), so callers holding cached intermediates pay only for the
// assignment problem.
func MeanFootruleRanks(rd *genfunc.RankDist, u *Upsilons, k int) (List, float64, error) {
	keys := rd.Keys()
	if k > len(keys) {
		k = len(keys)
	}
	cost := make([][]float64, k)
	for i := 1; i <= k; i++ {
		row := make([]float64, len(keys))
		for ti, key := range keys {
			row[ti] = FootruleCost(rd, u, key, i)
		}
		cost[i-1] = row
	}
	rowTo, total, err := assignment.Min(cost)
	if err != nil {
		return nil, 0, err
	}
	out := make(List, k)
	for i, ti := range rowTo {
		out[i] = keys[ti]
	}
	return out, FootruleConstant(rd, u, k) + total, nil
}
