// Package topk implements Section 5 of the paper: consensus top-k answers
// over probabilistic databases represented as and/xor trees.
//
// A top-k answer is an ordered list of distinct tuple keys.  The package
// provides the three distances the paper analyses — the normalized
// symmetric difference metric, the intersection metric and Spearman's
// footrule with location parameter k+1 (all following Fagin, Kumar and
// Sivakumar's "Comparing top k lists") plus the top-k Kendall distance —
// and the consensus algorithms:
//
//   - mean answer under symmetric difference (Theorem 3), equal to the
//     PT-k/Global-top-k answer: the k tuples maximizing Pr(r(t) <= k);
//   - median answer under symmetric difference by dynamic programming over
//     the and/xor tree (Theorem 4);
//   - mean answer under the intersection metric, exactly via an assignment
//     problem, plus the Upsilon_H ranking-function approximation with its
//     H_k guarantee (Section 5.3);
//   - mean answer under the footrule distance, exactly via an assignment
//     problem (Section 5.4, Figure 2);
//   - Kendall approximations (Section 5.5): the footrule optimum as a
//     2-approximation and a pivot heuristic driven by the pairwise
//     precedence probabilities Pr(r(ti) < r(tj));
//   - the prior ranking semantics used as baselines (U-top-k, PT-k,
//     global top-k, expected rank, expected score).
package topk

import "fmt"

// List is an ordered top-k answer: tuple keys from rank 1 downward.
type List []string

// Validate reports an error if the list contains duplicates.
func (l List) Validate() error {
	seen := make(map[string]bool, len(l))
	for _, t := range l {
		if seen[t] {
			return fmt.Errorf("topk: duplicate tuple %q in answer list", t)
		}
		seen[t] = true
	}
	return nil
}

// Position returns the 1-based position of t in l, or 0 if absent.
func (l List) Position(t string) int {
	for i, v := range l {
		if v == t {
			return i + 1
		}
	}
	return 0
}

// Contains reports membership.
func (l List) Contains(t string) bool { return l.Position(t) > 0 }

// Equal reports whether two lists are identical element-wise.
func (l List) Equal(o List) bool {
	if len(l) != len(o) {
		return false
	}
	for i := range l {
		if l[i] != o[i] {
			return false
		}
	}
	return true
}

// symDiffCount returns |l1 delta l2| treating the lists as sets.
func symDiffCount(a, b List) int {
	inA := make(map[string]bool, len(a))
	for _, t := range a {
		inA[t] = true
	}
	d := len(a) + len(b)
	for _, t := range b {
		if inA[t] {
			d -= 2
		}
	}
	return d
}

// NormSymDiff is the normalized symmetric difference metric of Section 5.1:
// |tau1 delta tau2| / (2k).  The normalizer uses the query's k rather than
// the list lengths so that answers of worlds holding fewer than k tuples
// compare on the same scale.
func NormSymDiff(a, b List, k int) float64 {
	if k <= 0 {
		return 0
	}
	return float64(symDiffCount(a, b)) / float64(2*k)
}

// prefix returns the first i entries of l (all of l if shorter).
func prefix(l List, i int) List {
	if len(l) > i {
		return l[:i]
	}
	return l
}

// Intersection is the intersection metric of Section 5.1:
// (1/k) * sum_{i=1..k} normSymDiff(tau1^i, tau2^i) with each prefix
// normalized by its own length i.
func Intersection(a, b List, k int) float64 {
	if k <= 0 {
		return 0
	}
	s := 0.0
	for i := 1; i <= k; i++ {
		s += NormSymDiff(prefix(a, i), prefix(b, i), i)
	}
	return s / float64(k)
}

// Footrule is Spearman's footrule with location parameter l = k+1
// (Section 5.1): every element missing from a list is placed at position
// k+1 and the L1 distance between the position vectors is taken.  The
// result is the unnormalized F* the paper minimizes in Section 5.4.
func Footrule(a, b List, k int) float64 {
	loc := k + 1
	s := 0
	for i, t := range a {
		pa := i + 1
		pb := b.Position(t)
		if pb == 0 {
			pb = loc
		}
		s += abs(pa - pb)
	}
	for i, t := range b {
		if !a.Contains(t) {
			s += abs(i + 1 - loc)
		}
	}
	return float64(s)
}

// Kendall is the top-k Kendall distance of Section 5.5 with penalty
// parameter p, following Fagin et al.'s K^(p): for every unordered pair
// {ti, tj} of elements appearing in either list,
//
//   - both in both lists: penalty 1 if the two lists order them oppositely;
//   - both in one list, exactly one in the other: membership in a top-k
//     list pins an absent element below every present one, so the order is
//     determined in both lists; penalty 1 on disagreement;
//   - ti only in one list, tj only in the other: the lists necessarily
//     disagree; penalty 1;
//   - both in exactly one list (absent from the other): the other list's
//     order is unknowable; penalty p.
//
// p = 0 gives the optimistic K_min the paper calls d_K; p = 1/2 the neutral
// variant.
func Kendall(a, b List, p float64) float64 {
	elems := map[string]bool{}
	for _, t := range a {
		elems[t] = true
	}
	for _, t := range b {
		elems[t] = true
	}
	all := make([]string, 0, len(elems))
	for t := range elems {
		all = append(all, t)
	}
	s := 0.0
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			ti, tj := all[i], all[j]
			pa1, pa2 := a.Position(ti), a.Position(tj)
			pb1, pb2 := b.Position(ti), b.Position(tj)
			inA := pa1 > 0 && pa2 > 0
			inB := pb1 > 0 && pb2 > 0
			switch {
			case inA && inB:
				if (pa1 < pa2) != (pb1 < pb2) {
					s++
				}
			case inA && !inB:
				if pb1 == 0 && pb2 == 0 {
					s += p // case 4: both absent from b
				} else {
					// One of them is in b; the absent one sits below it.
					bFirstIsI := pb1 > 0
					if (pa1 < pa2) != bFirstIsI {
						s++
					}
				}
			case !inA && inB:
				if pa1 == 0 && pa2 == 0 {
					s += p
				} else {
					aFirstIsI := pa1 > 0
					if (pb1 < pb2) != aFirstIsI {
						s++
					}
				}
			default:
				// Each element in exactly one list: necessarily opposite
				// orders in any extensions.
				s++
			}
		}
	}
	return s
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
