package topk

import (
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/exact"
	"consensus/internal/genfunc"
	"consensus/internal/numeric"
	"consensus/internal/types"
	"consensus/internal/workload"
)

func TestExpectedIntersectionMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(3), 2)
		k := 2
		rd, err := genfunc.Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		ws := exact.MustEnumerate(tr)
		for _, tau := range allKLists(tr.Keys(), k) {
			got := ExpectedIntersection(rd, tau, k)
			want := exact.ExpectedOver(ws, func(w *types.World) float64 {
				return Intersection(tau, FromWorld(w, k), k)
			})
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("trial %d tau %v: closed form %g enum %g (tree %s)", trial, tau, got, want, tr)
			}
		}
	}
}

// Section 5.3 (experiment E8): the assignment-based answer minimizes
// E[d_I] over all ordered k-lists.
func TestMeanIntersectionIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		tau, rd, err := MeanIntersection(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := tau.Validate(); err != nil {
			t.Fatal(err)
		}
		kk := k
		if kk > len(tr.Keys()) {
			kk = len(tr.Keys())
		}
		tauE := ExpectedIntersection(rd, tau, kk)
		for _, cand := range allKLists(tr.Keys(), kk) {
			if e := ExpectedIntersection(rd, cand, kk); e < tauE-1e-9 {
				t.Fatalf("trial %d: %v with E=%g beats assignment answer %v with E=%g",
					trial, cand, e, tau, tauE)
			}
		}
	}
}

// The Upsilon_H guarantee of Section 5.3: A(tau_H) >= A(tau*) / H_k.
func TestUpsilonHApproximationBound(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 30; trial++ {
		tr := workload.Nested(rng, 4+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		exactTau, rd, err := MeanIntersection(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		upsTau, _, err := MeanIntersectionUpsilon(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		kk := k
		if kk > len(tr.Keys()) {
			kk = len(tr.Keys())
		}
		aStar := IntersectionObjective(rd, exactTau, kk)
		aH := IntersectionObjective(rd, upsTau, kk)
		hk := numeric.Harmonic(kk)
		if aH < aStar/hk-1e-9 {
			t.Fatalf("trial %d: A(tauH)=%g < A(tau*)/H_k=%g (k=%d)", trial, aH, aStar/hk, kk)
		}
		if aH > aStar+1e-9 {
			t.Fatalf("trial %d: approximation beats the optimum: %g > %g", trial, aH, aStar)
		}
	}
}

// The objective and the expected distance must be consistent: maximizing
// A(tau) is minimizing E[d_I] (they differ by a constant for fixed-size
// answers).
func TestObjectiveDistanceConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	tr := workload.BID(rng, 5, 2)
	k := 3
	rd, err := genfunc.Ranks(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	lists := allKLists(tr.Keys(), k)
	for i := 0; i < len(lists); i++ {
		for j := i + 1; j < len(lists); j++ {
			ei := ExpectedIntersection(rd, lists[i], k)
			ej := ExpectedIntersection(rd, lists[j], k)
			ai := IntersectionObjective(rd, lists[i], k)
			aj := IntersectionObjective(rd, lists[j], k)
			// E = const - 2A/(2k) => order must reverse.
			if (ei < ej-1e-12) != (ai > aj+1e-12) && !numeric.AlmostEqual(ei, ej, 1e-12) {
				t.Fatalf("inconsistent: E %g vs %g, A %g vs %g", ei, ej, ai, aj)
			}
		}
	}
}

func TestMeanIntersectionOrdersTopHeavy(t *testing.T) {
	// A tuple that is almost surely rank 1 must be placed first by the
	// intersection-metric answer (the metric is top-heavy).
	tr := mustTree(t, []blockSpec{
		{"a", 10, 0.95},
		{"b", 8, 0.9},
		{"c", 6, 0.85},
	})
	tau, _, err := MeanIntersection(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"a", "b", "c"}) {
		t.Fatalf("tau = %v, want [a b c]", tau)
	}
}

type blockSpec struct {
	key   string
	score float64
	prob  float64
}

func mustTree(t *testing.T, specs []blockSpec) *andxor.Tree {
	t.Helper()
	tuples := make([]andxor.TupleProb, len(specs))
	for i, s := range specs {
		tuples[i] = andxor.TupleProb{Leaf: types.Leaf{Key: s.key, Score: s.score}, Prob: s.prob}
	}
	tr, err := andxor.Independent(tuples)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
