package topk

import (
	"math/rand"
	"testing"

	"consensus/internal/exact"
	"consensus/internal/genfunc"
	"consensus/internal/numeric"
	"consensus/internal/types"
	"consensus/internal/workload"
)

// Experiment F2: the Figure 2 rewriting of E[F*(tau, tau_pw)] matches
// brute-force enumeration on random trees and arbitrary candidate lists.
func TestExpectedFootruleMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 15; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(3), 2)
		k := 2
		rd, err := genfunc.Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		u := NewUpsilons(rd, k)
		ws := exact.MustEnumerate(tr)
		for _, tau := range allKLists(tr.Keys(), k) {
			got := ExpectedFootrule(rd, u, tau, k)
			want := exact.ExpectedOver(ws, func(w *types.World) float64 {
				return Footrule(tau, FromWorld(w, k), k)
			})
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("trial %d tau %v: Figure 2 form %g enum %g (tree %s)", trial, tau, got, want, tr)
			}
		}
	}
}

// Experiment E9: the assignment-based answer minimizes E[F*] over all
// ordered k-lists, and the reported expectation matches the closed form.
func TestMeanFootruleIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		tau, e, rd, err := MeanFootrule(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := tau.Validate(); err != nil {
			t.Fatal(err)
		}
		kk := k
		if kk > len(tr.Keys()) {
			kk = len(tr.Keys())
		}
		u := NewUpsilons(rd, kk)
		if !numeric.AlmostEqual(e, ExpectedFootrule(rd, u, tau, kk), 1e-9) {
			t.Fatalf("trial %d: reported E %g, closed form %g", trial, e, ExpectedFootrule(rd, u, tau, kk))
		}
		for _, cand := range allKLists(tr.Keys(), kk) {
			if ce := ExpectedFootrule(rd, u, cand, kk); ce < e-1e-9 {
				t.Fatalf("trial %d: %v with E=%g beats assignment answer %v with E=%g",
					trial, cand, ce, tau, e)
			}
		}
	}
}

// The footrule distance penalizes position displacement; a tuple that is
// almost always rank 1 must land at position 1.
func TestMeanFootrulePlacesCertainTupleFirst(t *testing.T) {
	tr := mustTree(t, []blockSpec{
		{"sure", 100, 0.99},
		{"maybe", 50, 0.5},
		{"rare", 10, 0.1},
	})
	tau, _, _, err := MeanFootrule(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tau[0] != "sure" {
		t.Fatalf("tau = %v, want 'sure' first", tau)
	}
}

func TestUpsilonStatisticsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 10; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(3), 2)
		k := 3
		rd, err := genfunc.Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		u := NewUpsilons(rd, k)
		ws := exact.MustEnumerate(tr)
		for _, key := range tr.Keys() {
			key := key
			u1 := exact.RankAtMostProb(ws, key, k)
			if !numeric.AlmostEqual(u.U1[key], u1, 1e-9) {
				t.Fatalf("U1(%s) = %g, enum %g", key, u.U1[key], u1)
			}
			u2 := 0.0
			for i := 1; i <= k; i++ {
				u2 += float64(i) * exact.RankProb(ws, key, i)
			}
			if !numeric.AlmostEqual(u.U2[key], u2, 1e-9) {
				t.Fatalf("U2(%s) = %g, enum %g", key, u.U2[key], u2)
			}
			for i := 1; i <= k; i++ {
				want := 0.0
				for j := 1; j <= k; j++ {
					want += exact.RankProb(ws, key, j) * float64(abs(i-j))
				}
				want -= float64(i) * (1 - u1)
				if got := u.U3(rd, key, i); !numeric.AlmostEqual(got, want, 1e-9) {
					t.Fatalf("U3(%s,%d) = %g, enum %g", key, i, got, want)
				}
			}
		}
	}
}
