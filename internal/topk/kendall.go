package topk

import (
	"math"
	"math/rand"
	"sort"

	"consensus/internal/andxor"
	"consensus/internal/genfunc"
)

// KendallPivot returns an approximate mean top-k answer under the Kendall
// distance using only the pairwise precedence probabilities
// Pr(r(ti) < r(tj)), which Section 5.5 points out is the only statistic
// Ailon's partial-rank-aggregation algorithm consumes and which the
// generating-function method computes in polynomial time.
//
// The paper's 3/2-approximation rounds an LP; with the standard library
// only, we implement the combinatorial pivot variant instead (quicksort
// with a random pivot on the majority tournament w(i,j) = Pr(r(ti) <
// r(tj)) >= 1/2) and take the first k of the resulting order.  Experiment
// E10 measures its realized quality against the exact optimum and the
// proven bounds of the LP algorithm.  See DESIGN.md, substitutions.
func KendallPivot(t *andxor.Tree, k int, rng *rand.Rand) (List, error) {
	keys := t.Keys()
	if k > len(keys) {
		k = len(keys)
	}
	prec := genfunc.PrecedenceMatrix(t, keys)
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	order := pivotSort(idx, prec, rng)
	out := make(List, k)
	for i := 0; i < k; i++ {
		out[i] = keys[order[i]]
	}
	return out, nil
}

// pivotSort recursively orders items by a random pivot: i goes before the
// pivot when the tournament prefers i, i.e. Pr(r(ti) < r(tp)) >=
// Pr(r(tp) < r(ti)).
func pivotSort(items []int, prec [][]float64, rng *rand.Rand) []int {
	if len(items) <= 1 {
		return items
	}
	p := items[rng.Intn(len(items))]
	var before, after []int
	for _, i := range items {
		if i == p {
			continue
		}
		if prec[i][p] >= prec[p][i] {
			before = append(before, i)
		} else {
			after = append(after, i)
		}
	}
	out := pivotSort(before, prec, rng)
	out = append(out, p)
	return append(out, pivotSort(after, prec, rng)...)
}

// KendallViaFootrule returns the footrule-optimal answer as a Kendall
// consensus: Section 5.5 notes d_F and d_K lie in one equivalence class,
// so the footrule optimum is a constant-factor (2) approximation for d_K.
func KendallViaFootrule(t *andxor.Tree, k int) (List, error) {
	tau, _, _, err := MeanFootrule(t, k)
	return tau, err
}

// ExactKendallMean exhaustively searches all ordered k-lists over the
// tree's keys for the one minimizing the expected Kendall distance
// (penalty parameter p) computed against an explicitly enumerated world
// distribution.  Exponential; used by tests and experiment E10 to measure
// the approximations.  The expected distance of the optimum is returned.
func ExactKendallMean(worlds []andxor.WeightedWorld, keys []string, k int, p float64) (List, float64) {
	if k > len(keys) {
		k = len(keys)
	}
	// Pre-compute the top-k answer of every world.
	answers := make([]List, len(worlds))
	for i, ww := range worlds {
		answers[i] = FromWorld(ww.World, k)
	}
	best := math.Inf(1)
	var bestTau List
	cur := make(List, 0, k)
	used := make(map[string]bool, len(keys))
	var rec func()
	rec = func() {
		if len(cur) == k {
			e := 0.0
			for i, ww := range worlds {
				e += ww.Prob * Kendall(cur, answers[i], p)
			}
			if e < best {
				best = e
				bestTau = append(List(nil), cur...)
			}
			return
		}
		for _, key := range keys {
			if used[key] {
				continue
			}
			used[key] = true
			cur = append(cur, key)
			rec()
			cur = cur[:len(cur)-1]
			used[key] = false
		}
	}
	rec()
	return bestTau, best
}

// ExpectedKendall returns E[d_K(tau, tau_pw)] against an enumerated world
// distribution (penalty p).
func ExpectedKendall(worlds []andxor.WeightedWorld, tau List, k int, p float64) float64 {
	e := 0.0
	for _, ww := range worlds {
		e += ww.Prob * Kendall(tau, FromWorld(ww.World, k), p)
	}
	return e
}

// sortKeysByScoreDesc is a test helper exposed for experiments: it orders
// keys by the maximum alternative score in the tree.
func sortKeysByScoreDesc(t *andxor.Tree, keys []string) {
	maxScore := map[string]float64{}
	for _, l := range t.LeafAlternatives() {
		if s, ok := maxScore[l.Key]; !ok || l.Score > s {
			maxScore[l.Key] = l.Score
		}
	}
	sort.SliceStable(keys, func(i, j int) bool { return maxScore[keys[i]] > maxScore[keys[j]] })
}
