package topk

import (
	"math/rand"
	"testing"

	"consensus/internal/exact"
	"consensus/internal/numeric"
	"consensus/internal/workload"
)

// Experiment E10: the footrule-optimal answer is within the equivalence-
// class factor (2) of the exact Kendall optimum, and the pivot answer is
// measured as well.
func TestKendallApproximations(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	worstFootrule, worstPivot := 1.0, 1.0
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(3), 2)
		k := 2
		if len(tr.Keys()) < k {
			continue
		}
		ws := exact.MustEnumerate(tr)
		_, optE := ExactKendallMean(ws, tr.Keys(), k, 0.5)

		ft, err := KendallViaFootrule(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		ftE := ExpectedKendall(ws, ft, k, 0.5)
		pv, err := KendallPivot(tr, k, rand.New(rand.NewSource(int64(trial))))
		if err != nil {
			t.Fatal(err)
		}
		pvE := ExpectedKendall(ws, pv, k, 0.5)

		if ftE < optE-1e-9 || pvE < optE-1e-9 {
			t.Fatalf("trial %d: approximation beats the exact optimum: opt %g footrule %g pivot %g",
				trial, optE, ftE, pvE)
		}
		if optE > 1e-9 {
			if r := ftE / optE; r > worstFootrule {
				worstFootrule = r
			}
			if r := pvE / optE; r > worstPivot {
				worstPivot = r
			}
		}
	}
	// The equivalence-class bound for the footrule optimum is a factor 2.
	if worstFootrule > 2+1e-9 {
		t.Fatalf("footrule-based Kendall answer exceeded its factor-2 bound: %g", worstFootrule)
	}
	t.Logf("measured worst ratios: footrule %.3f, pivot %.3f", worstFootrule, worstPivot)
}

func TestKendallPivotDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	tr := workload.BID(rng, 6, 2)
	a, err := KendallPivot(tr, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := KendallPivot(tr, 3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("pivot with identical seed must be deterministic")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a) != 3 {
		t.Fatalf("len = %d", len(a))
	}
}

func TestExactKendallMeanSmall(t *testing.T) {
	// Deterministic database: exact consensus must be its own top-k list
	// with expected distance 0.
	tr := mustTree(t, []blockSpec{
		{"a", 3, 1.0},
		{"b", 2, 1.0},
		{"c", 1, 1.0},
	})
	ws := exact.MustEnumerate(tr)
	tau, e := ExactKendallMean(ws, tr.Keys(), 2, 0.5)
	if !tau.Equal(List{"a", "b"}) {
		t.Fatalf("tau = %v, want [a b]", tau)
	}
	if !numeric.AlmostEqual(e, 0, 1e-12) {
		t.Fatalf("E = %g, want 0", e)
	}
}
