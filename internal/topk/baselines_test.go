package topk

import (
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/numeric"
	"consensus/internal/workload"
)

// Section 5.2's observation: with the threshold set so PT-k returns
// exactly k tuples, PT-k coincides with the mean answer under d_Delta.
func TestPTkRecoversMeanAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 10; trial++ {
		tr := workload.BID(rng, 6, 2)
		k := 3
		mean, rd, err := MeanSymDiff(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		// Set the threshold at the k-th largest Pr(r(t)<=k).
		thr := rd.PrTopK(mean[len(mean)-1])
		pt, err := PTk(tr, k, thr)
		if err != nil {
			t.Fatal(err)
		}
		// PT-k returns every tuple >= thr; with distinct probabilities it
		// is exactly the mean answer.
		if len(pt) == len(mean) && !pt.Equal(mean) {
			t.Fatalf("trial %d: PT-k %v != mean %v", trial, pt, mean)
		}
		for _, key := range mean {
			if !pt.Contains(key) {
				t.Fatalf("trial %d: mean member %s missing from PT-k %v", trial, key, pt)
			}
		}
	}
}

func TestGlobalTopKEqualsMean(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	tr := workload.BID(rng, 7, 2)
	g, err := GlobalTopK(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, err := MeanSymDiff(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(mean) {
		t.Fatalf("global %v != mean %v", g, mean)
	}
}

func TestUTopKExactAndSampledAgree(t *testing.T) {
	tr := andxor.Figure1iii()
	// The three worlds have distinct top-2 answers with probs .3/.3/.4;
	// U-top-2 is pw3's answer [t2 t4].
	tau, p, err := UTopK(tr, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"t2", "t4"}) || !numeric.AlmostEqual(p, 0.4, 1e-12) {
		t.Fatalf("UTopK = %v (%g), want [t2 t4] (0.4)", tau, p)
	}
	sTau, sP, err := UTopKSampled(tr, 2, 20000, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if !sTau.Equal(tau) {
		t.Fatalf("sampled UTopK = %v, want %v", sTau, tau)
	}
	if sP < 0.35 || sP > 0.45 {
		t.Fatalf("sampled prob %g too far from 0.4", sP)
	}
	if _, _, err := UTopKSampled(tr, 2, 0, rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("samples=0 must error")
	}
}

func TestExpectedRankTopKOrdering(t *testing.T) {
	// Near-certain high-score tuple must come first under expected rank.
	tr := mustTree(t, []blockSpec{
		{"hi", 100, 0.99},
		{"mid", 50, 0.9},
		{"lo", 10, 0.9},
	})
	tau, err := ExpectedRankTopK(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"hi", "mid", "lo"}) {
		t.Fatalf("tau = %v", tau)
	}
}

func TestExpectedScoreTopK(t *testing.T) {
	// Expected score can disagree with rank semantics: a mid-score
	// near-certain tuple can beat a high-score unlikely one.
	tr := mustTree(t, []blockSpec{
		{"risky", 100, 0.1}, // E[score] = 10
		{"solid", 30, 0.9},  // E[score] = 27
	})
	tau := ExpectedScoreTopK(tr, 1)
	if !tau.Equal(List{"solid"}) {
		t.Fatalf("tau = %v, want [solid]", tau)
	}
}

// Experiment E15 in miniature: Theorem 3 guarantees the mean answer's
// E[d_Delta] lower-bounds every baseline's.
func TestMeanDominatesBaselinesUnderSymDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	for trial := 0; trial < 10; trial++ {
		tr := workload.Nested(rng, 5, 2)
		k := 2
		mean, rd, err := MeanSymDiff(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		meanE := ExpectedNormSymDiff(rd, mean, k)
		var baselines []List
		if u, _, err := UTopK(tr, k, 0); err == nil {
			baselines = append(baselines, u)
		}
		if er, err := ExpectedRankTopK(tr, k); err == nil {
			baselines = append(baselines, er[:min(len(er), k)])
		}
		baselines = append(baselines, ExpectedScoreTopK(tr, k))
		if md, _, err := MedianSymDiff(tr, k); err == nil {
			baselines = append(baselines, md)
		}
		for i, b := range baselines {
			// Theorem 3's optimality is over answers of size exactly k; a
			// U-top-k answer of a small world can be shorter and is then
			// outside the comparison class.
			if len(b) != len(mean) {
				continue
			}
			if e := ExpectedNormSymDiff(rd, b, k); e < meanE-1e-9 {
				t.Fatalf("trial %d: baseline %d (%v) with E=%g beats mean %v with E=%g",
					trial, i, b, e, mean, meanE)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
