package topk

import (
	"math"
	"math/rand"
	"testing"

	"consensus/internal/andxor"
	"consensus/internal/exact"
	"consensus/internal/genfunc"
	"consensus/internal/numeric"
	"consensus/internal/types"
	"consensus/internal/workload"
)

// allKSubsets enumerates all k-subsets of keys as unordered candidate
// answers (order is irrelevant to d_Delta).
func allKSubsets(keys []string, k int) []List {
	var out []List
	var rec func(start int, cur List)
	rec = func(start int, cur List) {
		if len(cur) == k {
			out = append(out, append(List(nil), cur...))
			return
		}
		for i := start; i < len(keys); i++ {
			rec(i+1, append(cur, keys[i]))
		}
	}
	rec(0, nil)
	return out
}

// allKLists enumerates all ordered k-lists of keys.
func allKLists(keys []string, k int) []List {
	var out []List
	used := make([]bool, len(keys))
	var rec func(cur List)
	rec = func(cur List) {
		if len(cur) == k {
			out = append(out, append(List(nil), cur...))
			return
		}
		for i, key := range keys {
			if !used[i] {
				used[i] = true
				rec(append(cur, key))
				used[i] = false
			}
		}
	}
	rec(nil)
	return out
}

func TestExpectedNormSymDiffMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(3), 2)
		k := 2
		rd, err := genfunc.Ranks(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		ws := exact.MustEnumerate(tr)
		for _, tau := range allKSubsets(tr.Keys(), k) {
			got := ExpectedNormSymDiff(rd, tau, k)
			want := exact.ExpectedOver(ws, func(w *types.World) float64 {
				return NormSymDiff(tau, FromWorld(w, k), k)
			})
			if !numeric.AlmostEqual(got, want, 1e-9) {
				t.Fatalf("trial %d tau %v: closed form %g enum %g (tree %s)", trial, tau, got, want, tr)
			}
		}
	}
}

// Theorem 3 (experiment E6): the k tuples with the largest Pr(r(t)<=k)
// minimize E[d_Delta] over all k-subsets.
func TestMeanSymDiffIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		tau, rd, err := MeanSymDiff(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if err := tau.Validate(); err != nil {
			t.Fatal(err)
		}
		tauE := ExpectedNormSymDiff(rd, tau, k)
		if k > len(tr.Keys()) {
			k = len(tr.Keys())
		}
		for _, cand := range allKSubsets(tr.Keys(), k) {
			if e := ExpectedNormSymDiff(rd, cand, k); e < tauE-1e-9 {
				t.Fatalf("trial %d: %v with E=%g beats mean %v with E=%g (tree %s)",
					trial, cand, e, tau, tauE, tr)
			}
		}
	}
}

// Theorem 4 (experiment E7): the DP median is the optimal possible answer:
// no possible world's top-k answer has smaller expected distance.
func TestMedianSymDiffIsOptimalPossible(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	for trial := 0; trial < 30; trial++ {
		tr := workload.Nested(rng, 3+rng.Intn(4), 2)
		k := 1 + rng.Intn(3)
		tau, rd, err := MedianSymDiff(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		ws := exact.MustEnumerate(tr)
		// The median must be the answer of some possible world.
		found := false
		for _, ww := range ws {
			if FromWorld(ww.World, k).Equal(tau) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("trial %d: median %v is not any possible world's answer (tree %s)", trial, tau, tr)
		}
		tauE := ExpectedNormSymDiff(rd, tau, k)
		for _, ww := range ws {
			cand := FromWorld(ww.World, k)
			if e := ExpectedNormSymDiff(rd, cand, k); e < tauE-1e-9 {
				t.Fatalf("trial %d: possible answer %v with E=%g beats median %v with E=%g (tree %s)",
					trial, cand, e, tau, tauE, tr)
			}
		}
	}
}

func TestMedianSymDiffFigure1iii(t *testing.T) {
	// For the three-world database of Figure 1(ii), with k=2:
	// candidates are (t3,t2) [pw1], (t3,t1) [pw2], (t2,t4) [pw3].
	// Pr(r<=2): t3: .6, t2: .7, t1: .3, t4: .4, t5: 0.
	// Sums: pw1: 1.3, pw2: 0.9, pw3: 1.1 -> median is pw1's answer.
	tau, _, err := MedianSymDiff(andxor.Figure1iii(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"t3", "t2"}) {
		t.Fatalf("median = %v, want [t3 t2]", tau)
	}
}

func TestMeanSymDiffFigure1iii(t *testing.T) {
	// Mean = 2 tuples with largest Pr(r<=2): t2 (.7) and t3 (.6).
	tau, _, err := MeanSymDiff(andxor.Figure1iii(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"t2", "t3"}) {
		t.Fatalf("mean = %v, want [t2 t3]", tau)
	}
}

func TestMeanEqualsMedianWhenMeanPossible(t *testing.T) {
	// On Figure 1(i) with k=2 the mean answer set happens to be realized
	// by a possible world; mean and median then agree as sets.
	tr := andxor.Figure1i()
	k := 2
	mean, rd, err := MeanSymDiff(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	med, _, err := MedianSymDiff(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	meanE := ExpectedNormSymDiff(rd, mean, k)
	medE := ExpectedNormSymDiff(rd, med, k)
	if medE < meanE-1e-12 {
		t.Fatalf("median E %g below mean E %g: impossible", medE, meanE)
	}
}

func TestMedianHandlesSmallWorlds(t *testing.T) {
	// A single tuple with existence probability 0.9 and k=3: every
	// possible world has at most one tuple, so the median answer is the
	// one-tuple list.
	tr, err := andxor.Independent([]andxor.TupleProb{
		{Leaf: types.Leaf{Key: "a", Score: 5}, Prob: 0.9},
	})
	if err != nil {
		t.Fatal(err)
	}
	tau, _, err := MedianSymDiff(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"a"}) {
		t.Fatalf("median = %v, want [a]", tau)
	}
}

func TestMedianPrefersShorterAnswerWhenBetter(t *testing.T) {
	// Two tuples: a with probability 0.9, b with probability 0.05; k=2.
	// Candidate answers: [a b] (world {a,b}), [a] (world {a}), [b], [].
	// E-scores favor [a]: including b costs 1-2*Pr(r(b)<=2) ~ +0.9.
	tr, err := andxor.Independent([]andxor.TupleProb{
		{Leaf: types.Leaf{Key: "a", Score: 5}, Prob: 0.9},
		{Leaf: types.Leaf{Key: "b", Score: 3}, Prob: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	tau, _, err := MedianSymDiff(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tau.Equal(List{"a"}) {
		t.Fatalf("median = %v, want [a]", tau)
	}
}

func TestMeanSymDiffScales(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	tr := workload.BID(rng, 300, 2)
	tau, rd, err := MeanSymDiff(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(tau) != 10 {
		t.Fatalf("got %d answers", len(tau))
	}
	if e := ExpectedNormSymDiff(rd, tau, 10); math.IsNaN(e) || e < 0 || e > 1 {
		t.Fatalf("E = %g out of range", e)
	}
}
