package topk

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormSymDiff(t *testing.T) {
	a := List{"t1", "t2", "t3"}
	b := List{"t2", "t3", "t4"}
	if d := NormSymDiff(a, b, 3); d != 2.0/6.0 {
		t.Fatalf("d = %g, want 1/3", d)
	}
	if d := NormSymDiff(a, a, 3); d != 0 {
		t.Fatalf("identity failed: %g", d)
	}
	// Disjoint lists are at maximum distance 1.
	if d := NormSymDiff(List{"a", "b"}, List{"c", "d"}, 2); d != 1 {
		t.Fatalf("disjoint = %g, want 1", d)
	}
}

func TestIntersectionMetricWorkedExample(t *testing.T) {
	// Fagin et al.'s motivation: dI penalizes disagreement near the top
	// more.  tau1 and tau2 share the same set but swap positions 1 and 3.
	a := List{"x", "y", "z"}
	b := List{"z", "y", "x"}
	// Prefix 1: {x} vs {z}: |delta|=2, /2 = 1.
	// Prefix 2: {x,y} vs {z,y}: |delta|=2, /4 = 1/2.
	// Prefix 3: equal sets: 0.
	want := (1.0 + 0.5 + 0) / 3
	if d := Intersection(a, b, 3); d != want {
		t.Fatalf("dI = %g, want %g", d, want)
	}
	if d := Intersection(a, a, 3); d != 0 {
		t.Fatal("identity failed")
	}
}

func TestFootruleWorkedExample(t *testing.T) {
	// tau1 = (x,y), tau2 = (y,x), k=2: |1-2| + |2-1| = 2.
	if d := Footrule(List{"x", "y"}, List{"y", "x"}, 2); d != 2 {
		t.Fatalf("dF = %g, want 2", d)
	}
	// Missing elements go to position k+1=3:
	// tau1 = (x,y), tau2 = (x,z): y at 2 vs 3 (+1), z at 3 vs 2 (+1).
	if d := Footrule(List{"x", "y"}, List{"x", "z"}, 2); d != 2 {
		t.Fatalf("dF = %g, want 2", d)
	}
	// Lists of different lengths (a short world answer).
	if d := Footrule(List{"x", "y"}, List{"x"}, 2); d != 1 {
		t.Fatalf("dF = %g, want 1 (y from 2 to 3)", d)
	}
}

func TestKendallCases(t *testing.T) {
	// Case 1: both pairs in both lists, opposite order.
	if d := Kendall(List{"x", "y"}, List{"y", "x"}, 0); d != 1 {
		t.Fatalf("case 1: %g", d)
	}
	// Mixed membership: tau1 = (y,x), tau2 = (x,z).
	// Pair (x,y): tau1 has y first; tau2 pins absent y below x: +1.
	// Pair (x,z): tau1 pins absent z below x; tau2 has x first: 0.
	// Pair (y,z): y only in tau1, z only in tau2: necessarily opposite: +1.
	if d := Kendall(List{"y", "x"}, List{"x", "z"}, 0); d != 2 {
		t.Fatalf("mixed membership total: %g, want 2", d)
	}
	// Case 4: both in tau1 only: penalty p.
	if d := Kendall(List{"a", "b"}, List{"c", "d"}, 0.5); d < 1 {
		t.Fatalf("disjoint lists with p=0.5: %g", d)
	}
}

func TestKendallDisjointExact(t *testing.T) {
	// tau1 = (a,b), tau2 = (c,d), p: pairs (a,b): both tau1 only -> p;
	// (c,d): both tau2 only -> p; (a,c),(a,d),(b,c),(b,d): split -> 1.
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		want := 4 + 2*p
		if d := Kendall(List{"a", "b"}, List{"c", "d"}, p); d != want {
			t.Fatalf("p=%g: %g, want %g", p, d, want)
		}
	}
}

// Random lists over a small universe for property tests.
func randList(rng *rand.Rand, k int) List {
	universe := []string{"a", "b", "c", "d", "e", "f"}
	rng.Shuffle(len(universe), func(i, j int) { universe[i], universe[j] = universe[j], universe[i] })
	return List(append([]string(nil), universe[:k]...))
}

// Metric properties: symmetry, identity, triangle inequality (Fagin et al.
// prove full metricity for d_Delta, d_I and d_F).  The top-k Kendall
// distance K^(p) is only a *near* metric — Fagin et al. prove a relaxed
// triangle inequality, and disjoint-list examples genuinely violate the
// strict one — so it is checked with the factor-2 relaxation instead.
func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	metrics := []struct {
		name  string
		d     func(a, b List) float64
		relax float64 // multiplier on the right-hand side of the triangle inequality
	}{
		{"normSymDiff", func(a, b List) float64 { return NormSymDiff(a, b, 3) }, 1},
		{"intersection", func(a, b List) float64 { return Intersection(a, b, 3) }, 1},
		{"footrule", func(a, b List) float64 { return Footrule(a, b, 3) }, 1},
		{"kendall1/2", func(a, b List) float64 { return Kendall(a, b, 0.5) }, 2},
	}
	f := func(seedA, seedB, seedC int64) bool {
		a := randList(rand.New(rand.NewSource(seedA)), 3)
		b := randList(rand.New(rand.NewSource(seedB)), 3)
		c := randList(rand.New(rand.NewSource(seedC)), 3)
		for _, m := range metrics {
			if m.d(a, b) != m.d(b, a) {
				return false
			}
			if m.d(a, a) != 0 {
				return false
			}
			if m.d(a, c) > m.relax*(m.d(a, b)+m.d(b, c))+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// A concrete witness that K^(1/2) is not a metric (kept as documentation
// of the near-metric caveat): disjoint lists sit at distance
// k^2 + 2*p*C(k,2), which can exceed the sum through an overlapping list.
func TestKendallTriangleViolationWitness(t *testing.T) {
	a := List{"d", "e", "b"}
	b := List{"b", "a", "e"}
	c := List{"a", "c", "f"}
	dab, dbc, dac := Kendall(a, b, 0.5), Kendall(b, c, 0.5), Kendall(a, c, 0.5)
	if dac <= dab+dbc {
		t.Fatalf("expected a strict-triangle violation, got %g <= %g + %g", dac, dab, dbc)
	}
	if dac > 2*(dab+dbc) {
		t.Fatalf("relaxed triangle (factor 2) must still hold: %g vs %g", dac, 2*(dab+dbc))
	}
}

// Fagin et al.: dF and dK belong to one equivalence class; in particular
// dK <= dF always (each displaced pair costs at least its footrule share)
// and dF <= 2(k+1) dK.  Spot-check the containment empirically.
func TestFootruleKendallEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 500; trial++ {
		a := randList(rng, 3)
		b := randList(rng, 3)
		dk := Kendall(a, b, 0.5)
		df := Footrule(a, b, 3)
		if dk > df+1e-12 {
			t.Fatalf("dK=%g > dF=%g for %v vs %v", dk, df, a, b)
		}
		if df > 2*float64(3+1)*dk+1e-12 {
			t.Fatalf("dF=%g > 2(k+1)dK=%g for %v vs %v", df, 2*4*dk, a, b)
		}
	}
}

func TestListHelpers(t *testing.T) {
	l := List{"a", "b", "c"}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (List{"a", "a"}).Validate(); err == nil {
		t.Fatal("duplicate must be rejected")
	}
	if l.Position("b") != 2 || l.Position("z") != 0 {
		t.Fatal("Position wrong")
	}
	if !l.Equal(List{"a", "b", "c"}) || l.Equal(List{"a", "b"}) || l.Equal(List{"a", "c", "b"}) {
		t.Fatal("Equal wrong")
	}
}
