package topk

import (
	"math/rand"
	"testing"

	"consensus/internal/genfunc"
	"consensus/internal/numeric"
	"consensus/internal/workload"
)

// The step weight recovers the Theorem 3 consensus mean / global top-k.
func TestPRFStepWeightRecoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	for trial := 0; trial < 10; trial++ {
		tr := workload.BID(rng, 8, 2)
		k := 3
		mean, _, err := MeanSymDiff(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		prf, err := PRFTopK(tr, StepWeight(k), k, k)
		if err != nil {
			t.Fatal(err)
		}
		// Same set (order may differ only on exact ties).
		for _, key := range mean {
			if !prf.Contains(key) {
				t.Fatalf("trial %d: PRF step answer %v missing %s from mean %v", trial, prf, key, mean)
			}
		}
	}
}

// The harmonic tail weight recovers Upsilon_H.
func TestPRFHarmonicRecoversUpsilonH(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	tr := workload.BID(rng, 8, 2)
	k := 4
	rd, err := genfunc.Ranks(tr, k)
	if err != nil {
		t.Fatal(err)
	}
	ups := UpsilonH(rd, k)
	prf := PRFFromRanks(rd, HarmonicTailWeight(k))
	for key, want := range ups {
		if !numeric.AlmostEqual(prf[key], want, 1e-12) {
			t.Fatalf("key %s: PRF %g, UpsilonH %g", key, prf[key], want)
		}
	}
}

// Sum over positions identity: with w === 1 up to n, Upsilon_w(t) is the
// tuple's marginal probability.
func TestPRFConstantWeightGivesMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	tr := workload.Nested(rng, 6, 2)
	n := len(tr.Keys())
	vals, err := PRF(tr, func(int) float64 { return 1 }, n)
	if err != nil {
		t.Fatal(err)
	}
	marg := tr.KeyMarginals()
	for key, want := range marg {
		if !numeric.AlmostEqual(vals[key], want, 1e-9) {
			t.Fatalf("key %s: PRF %g, marginal %g", key, vals[key], want)
		}
	}
}

func TestPRFGeometricPrefersTopHeavy(t *testing.T) {
	// Tuple A: always rank 2.  Tuple B: rank 1 with probability 0.6,
	// otherwise absent.  A strongly decaying weight must prefer B; a flat
	// weight must prefer A.
	tr := mustTree(t, []blockSpec{
		{"mid", 50, 1.0},
		{"top", 99, 0.6},
	})
	flat, err := PRFTopK(tr, StepWeight(2), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flat[0] != "mid" {
		t.Fatalf("flat weight picked %v, want mid (certain member)", flat)
	}
	sharp, err := PRFTopK(tr, GeometricWeight(0.05), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sharp[0] != "top" {
		t.Fatalf("sharp weight picked %v, want top", sharp)
	}
}

func TestPRFValidation(t *testing.T) {
	tr := mustTree(t, []blockSpec{{"a", 1, 0.5}})
	if _, err := PRFTopK(tr, StepWeight(2), 3, 2); err == nil {
		t.Fatal("cutoff below k must be rejected")
	}
}
