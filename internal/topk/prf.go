package topk

import (
	"fmt"
	"math"
	"sort"

	"consensus/internal/andxor"
	"consensus/internal/genfunc"
)

// Parameterized ranking functions (PRF).  Section 5.3's Upsilon_H is "a
// special case of the parameterized ranking function proposed in [29]"
// (Li, Saha, Deshpande): rank tuples by
//
//	Upsilon_w(t) = sum_{i >= 1} w(i) * Pr(r(t) = i)
//
// for a position-weight function w.  Different weight functions recover
// the prior semantics: a step function w(i) = 1{i <= k} yields PT-k /
// global top-k (and hence the Theorem 3 consensus mean), the harmonic
// tail weight w(i) = H_k - H_{i-1} yields Upsilon_H, and exponentially
// decaying weights interpolate between "membership counts" and "only the
// top position matters".  This file implements the general machinery so
// the experiments can compare the whole family under the consensus
// yardstick.

// WeightFunc assigns a non-negative weight to each rank position
// (1-based).
type WeightFunc func(i int) float64

// StepWeight returns w(i) = 1 for i <= k, else 0: the PT-k / global
// top-k / Theorem 3 weight.
func StepWeight(k int) WeightFunc {
	return func(i int) float64 {
		if i <= k {
			return 1
		}
		return 0
	}
}

// HarmonicTailWeight returns w(i) = H_k - H_{i-1} for i <= k (the
// Upsilon_H weight of Section 5.3).
func HarmonicTailWeight(k int) WeightFunc {
	h := make([]float64, k+1)
	for i := 1; i <= k; i++ {
		h[i] = h[i-1] + 1/float64(i)
	}
	return func(i int) float64 {
		if i > k {
			return 0
		}
		return h[k] - h[i-1]
	}
}

// GeometricWeight returns w(i) = alpha^(i-1), emphasizing top positions
// for alpha < 1.
func GeometricWeight(alpha float64) WeightFunc {
	return func(i int) float64 { return math.Pow(alpha, float64(i-1)) }
}

// PRF computes Upsilon_w(t) for every key, truncating the sum at rank
// cutoff (weights beyond it are treated as zero, which is exact for
// weights supported on 1..cutoff).
func PRF(t *andxor.Tree, w WeightFunc, cutoff int) (map[string]float64, error) {
	rd, err := genfunc.Ranks(t, cutoff)
	if err != nil {
		return nil, err
	}
	return PRFFromRanks(rd, w), nil
}

// PRFFromRanks computes the same values from a precomputed rank
// distribution.
func PRFFromRanks(rd *genfunc.RankDist, w WeightFunc) map[string]float64 {
	out := make(map[string]float64, len(rd.Keys()))
	for _, key := range rd.Keys() {
		s := 0.0
		for i := 1; i <= rd.K; i++ {
			if wi := w(i); wi != 0 {
				s += wi * rd.PrEq(key, i)
			}
		}
		out[key] = s
	}
	return out
}

// PRFTopK returns the k keys with the largest Upsilon_w values, ordered
// by value (descending, ties by key).
func PRFTopK(t *andxor.Tree, w WeightFunc, k, cutoff int) (List, error) {
	if cutoff < k {
		return nil, fmt.Errorf("topk: PRF cutoff %d below k %d", cutoff, k)
	}
	vals, err := PRF(t, w, cutoff)
	if err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(vals))
	for key := range vals {
		keys = append(keys, key)
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if vals[keys[i]] != vals[keys[j]] {
			return vals[keys[i]] > vals[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return List(keys), nil
}
