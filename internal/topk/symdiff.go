package topk

import (
	"fmt"
	"math"
	"sort"

	"consensus/internal/andxor"
	"consensus/internal/genfunc"
	"consensus/internal/types"
)

// FromWorld returns the top-k answer of a deterministic world: its at most
// k highest-score tuples by decreasing score.
func FromWorld(w *types.World, k int) List {
	return List(w.TopK(k))
}

// RankSource is the rank-distribution view the symmetric-difference
// consensus algorithms consume: the covered tuple keys (sorted) and the
// cumulative rank probabilities Pr(r(t) <= i).  It is satisfied by the
// exact *genfunc.RankDist and by sampling-based estimates (package
// internal/approx), so the same Theorem 3/4 code serves both backends.
type RankSource interface {
	Keys() []string
	PrLE(key string, i int) float64
}

// ExpectedNormSymDiff returns E[d_Delta(tau, tau_pw)] in closed form from a
// rank distribution with cutoff k (the rewriting in the proof of
// Theorem 3): E[|tau delta tau_pw|] = sum_{t in tau} Pr(r(t) > k) +
// sum_{t not in tau} Pr(r(t) <= k), normalized by 2k.  Foreign keys in tau
// contribute Pr(r(t) > k) = 1.
func ExpectedNormSymDiff(rd RankSource, tau List, k int) float64 {
	e := 0.0
	for _, key := range rd.Keys() {
		if tau.Contains(key) {
			e += 1 - rd.PrLE(key, k)
		} else {
			e += rd.PrLE(key, k)
		}
	}
	for _, t := range tau {
		if !containsKey(rd.Keys(), t) {
			e += 1
		}
	}
	return e / float64(2*k)
}

func containsKey(keys []string, t string) bool {
	i := sort.SearchStrings(keys, t)
	return i < len(keys) && keys[i] == t
}

// MeanSymDiff returns the mean top-k answer under the normalized symmetric
// difference metric: by Theorem 3, the k tuples with the largest
// Pr(r(t) <= k).  Since d_Delta ignores order, the answer is returned
// sorted by that probability (descending, ties by key) for determinism.
// If the tree has fewer than k tuples, all of them are returned.
func MeanSymDiff(t *andxor.Tree, k int) (List, *genfunc.RankDist, error) {
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, nil, err
	}
	return MeanSymDiffRanks(rd, k), rd, nil
}

// MeanSymDiffRanks is MeanSymDiff on a precomputed rank distribution with
// cutoff rd.K >= k, letting callers (notably the serving engine) amortize
// the expensive Ranks computation across queries.
func MeanSymDiffRanks(rd RankSource, k int) List {
	keys := append([]string(nil), rd.Keys()...)
	sort.SliceStable(keys, func(i, j int) bool {
		pi, pj := rd.PrLE(keys[i], k), rd.PrLE(keys[j], k)
		if pi != pj {
			return pi > pj
		}
		return keys[i] < keys[j]
	})
	if len(keys) > k {
		keys = keys[:k]
	}
	return List(keys)
}

// MedianSymDiff returns a median top-k answer under the normalized
// symmetric difference metric: the top-k answer of some possible world
// minimizing the expected distance, found by the threshold + tree dynamic
// program of Theorem 4.
//
// For every candidate score threshold a, the DP computes the possible
// world of the tree restricted to leaves with score >= a that has exactly
// k such leaves and maximizes the answer's total Pr(r(t) <= k) (shifted by
// -1/2 per member so different answer sizes compare correctly); the best
// candidate over all thresholds is the median answer, ordered by
// decreasing score.  Because a world holding fewer than k tuples answers
// with all of them, answers of size j < k (realized by worlds of exactly j
// tuples, i.e. the no-threshold DP) are also candidates; the paper's DP is
// the size-k case.
func MedianSymDiff(t *andxor.Tree, k int) (List, *genfunc.RankDist, error) {
	rd, err := genfunc.Ranks(t, k)
	if err != nil {
		return nil, nil, err
	}
	tau, err := MedianSymDiffRanks(t, rd, k)
	return tau, rd, err
}

// MedianSymDiffRanks is MedianSymDiff on a precomputed rank distribution
// with cutoff rd.K >= k.
func MedianSymDiffRanks(t *andxor.Tree, rd RankSource, k int) (List, error) {
	if k > len(t.Keys()) {
		k = len(t.Keys())
	}
	if k == 0 {
		return List{}, nil
	}
	// Candidate thresholds: every distinct leaf score.
	scoreSet := map[float64]bool{}
	minScore := math.Inf(1)
	for _, l := range t.LeafAlternatives() {
		scoreSet[l.Score] = true
		minScore = math.Min(minScore, l.Score)
	}
	scores := make([]float64, 0, len(scoreSet))
	for s := range scoreSet {
		scores = append(scores, s)
	}
	sort.Float64s(scores)

	// E[d_Delta] decreases in sum_{t in tau} (Pr(r(t)<=k) - 1/2), so the
	// DP maximizes that weight and the best candidate across thresholds
	// and sizes is the median.
	bestVal := math.Inf(-1)
	var bestLeaves []types.Leaf
	for _, a := range scores {
		tab := medianDP(t, rd, k, a)
		if !math.IsInf(tab[k].val, -1) && tab[k].val > bestVal {
			bestVal = tab[k].val
			bestLeaves = tab[k].leaves
		}
		if a == minScore {
			// No-threshold table: worlds of exactly j < k tuples answer
			// with all of them.
			for j := 0; j < k; j++ {
				if !math.IsInf(tab[j].val, -1) && tab[j].val > bestVal {
					bestVal = tab[j].val
					bestLeaves = tab[j].leaves
				}
			}
		}
	}
	if math.IsInf(bestVal, -1) {
		return nil, fmt.Errorf("topk: tree admits no possible world")
	}
	sort.Slice(bestLeaves, func(i, j int) bool { return bestLeaves[i].Score > bestLeaves[j].Score })
	out := make(List, len(bestLeaves))
	for i, l := range bestLeaves {
		out[i] = l.Key
	}
	return out, nil
}

// dpEntry is one row of a node's DP table: the best achievable total
// Pr(r(t)<=k) over producible leaf sets of a given size, with the set
// itself for reconstruction.
type dpEntry struct {
	val    float64
	leaves []types.Leaf
}

// medianDP runs the Theorem 4 dynamic program for one threshold a and
// returns the full root table: entry j holds the best achievable total
// weight sum (Pr(r(t)<=k) - 1/2) over possible worlds with exactly j
// leaves of score >= a, with value -Inf when no such world exists.
func medianDP(t *andxor.Tree, rd RankSource, k int, a float64) []dpEntry {
	var walk func(n *andxor.Node) []dpEntry // index = size, nil entry = unachievable
	negInf := math.Inf(-1)
	walk = func(n *andxor.Node) []dpEntry {
		switch n.Kind() {
		case andxor.KindLeaf:
			l := n.Leaf()
			tab := make([]dpEntry, k+1)
			for i := range tab {
				tab[i].val = negInf
			}
			if l.Score >= a {
				if k >= 1 {
					tab[1] = dpEntry{val: rd.PrLE(l.Key, k) - 0.5, leaves: []types.Leaf{l}}
				}
			} else {
				// Below the threshold the leaf is present in the world but
				// contributes nothing to the top set.
				tab[0] = dpEntry{val: 0}
			}
			return tab
		case andxor.KindOr:
			tab := make([]dpEntry, k+1)
			for i := range tab {
				tab[i].val = negInf
			}
			if n.StopProb() > 0 {
				tab[0] = dpEntry{val: 0}
			}
			for ci, c := range n.Children() {
				sub := walk(c)
				if n.Probs()[ci] == 0 {
					continue
				}
				for sz, e := range sub {
					if e.val > tab[sz].val {
						tab[sz] = e
					}
				}
			}
			return tab
		default: // KindAnd: max-plus knapsack over children
			acc := make([]dpEntry, k+1)
			for i := range acc {
				acc[i].val = negInf
			}
			acc[0] = dpEntry{val: 0}
			for _, c := range n.Children() {
				sub := walk(c)
				next := make([]dpEntry, k+1)
				for i := range next {
					next[i].val = negInf
				}
				for s1, e1 := range acc {
					if math.IsInf(e1.val, -1) {
						continue
					}
					for s2, e2 := range sub {
						if math.IsInf(e2.val, -1) || s1+s2 > k {
							continue
						}
						if v := e1.val + e2.val; v > next[s1+s2].val {
							merged := make([]types.Leaf, 0, len(e1.leaves)+len(e2.leaves))
							merged = append(merged, e1.leaves...)
							merged = append(merged, e2.leaves...)
							next[s1+s2] = dpEntry{val: v, leaves: merged}
						}
					}
				}
				acc = next
			}
			return acc
		}
	}
	return walk(t.Root())
}
