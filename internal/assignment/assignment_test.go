package assignment

import (
	"math"
	"math/rand"
	"testing"

	"consensus/internal/numeric"
)

// bruteMin enumerates all injections rows -> cols.
func bruteMin(cost [][]float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	m := len(cost[0])
	used := make([]bool, m)
	best := math.Inf(1)
	var rec func(i int, acc float64)
	rec = func(i int, acc float64) {
		if i == n {
			if acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < m; j++ {
			if !used[j] {
				used[j] = true
				rec(i+1, acc+cost[i][j])
				used[j] = false
			}
		}
	}
	rec(0, 0)
	return best
}

func TestMinKnownCase(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	rowTo, total, err := Min(cost)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(total, 5, 1e-12) { // 1 + 2 + 2
		t.Fatalf("total = %g, want 5 (assign %v)", total, rowTo)
	}
	seen := map[int]bool{}
	for _, j := range rowTo {
		if seen[j] {
			t.Fatal("column assigned twice")
		}
		seen[j] = true
	}
}

func TestMinRectangular(t *testing.T) {
	cost := [][]float64{
		{10, 2, 8, 9},
		{7, 3, 4, 2},
	}
	_, total, err := Min(cost)
	if err != nil {
		t.Fatal(err)
	}
	if want := bruteMin(cost); !numeric.AlmostEqual(total, want, 1e-12) {
		t.Fatalf("total = %g, want %g", total, want)
	}
}

func TestMinRejectsBadInput(t *testing.T) {
	if _, _, err := Min([][]float64{{1}, {2}}); err == nil {
		t.Fatal("rows > cols must be rejected")
	}
	if _, _, err := Min([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged matrix must be rejected")
	}
	if _, _, err := Min([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("NaN cost must be rejected")
	}
	if _, total, err := Min(nil); err != nil || total != 0 {
		t.Fatal("empty problem should solve trivially")
	}
}

// Randomized cross-check against brute force, including negative costs.
func TestMinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		m := n + rng.Intn(3)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*41) - 20 // integers in [-20,20]
			}
		}
		rowTo, total, err := Min(cost)
		if err != nil {
			t.Fatal(err)
		}
		// The reported total must equal the cost of the reported assignment.
		check := 0.0
		seen := map[int]bool{}
		for i, j := range rowTo {
			if seen[j] {
				t.Fatalf("trial %d: column %d assigned twice", trial, j)
			}
			seen[j] = true
			check += cost[i][j]
		}
		if !numeric.AlmostEqual(check, total, 1e-9) {
			t.Fatalf("trial %d: reported %g but assignment costs %g", trial, total, check)
		}
		if want := bruteMin(cost); !numeric.AlmostEqual(total, want, 1e-9) {
			t.Fatalf("trial %d: total %g, brute force %g", trial, total, want)
		}
	}
}

func TestMaxIsNegatedMin(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(3)
		profit := make([][]float64, n)
		neg := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, m)
			neg[i] = make([]float64, m)
			for j := range profit[i] {
				profit[i][j] = rng.Float64() * 10
				neg[i][j] = -profit[i][j]
			}
		}
		_, maxTotal, err := Max(profit)
		if err != nil {
			t.Fatal(err)
		}
		if want := -bruteMin(neg); !numeric.AlmostEqual(maxTotal, want, 1e-9) {
			t.Fatalf("trial %d: max %g, want %g", trial, maxTotal, want)
		}
	}
}
