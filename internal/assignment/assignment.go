// Package assignment solves the rectangular linear assignment problem with
// the O(rows^2 * cols) Hungarian algorithm (Jonker–Volgenant style with
// potentials).
//
// Sections 5.3 and 5.4 of the paper reduce the computation of mean top-k
// answers under the intersection metric and under Spearman's footrule to
// exactly this problem: positions 1..k are agents, tuples are tasks, and
// the profit/cost of putting tuple t at position i is a function of the
// rank distribution Pr(r(t) = j) computed by the generating-function
// framework.  The paper cites the O(n*k*sqrt(n)) matching algorithm of
// Micali and Vazirani; we use the simpler cubic Hungarian algorithm, which
// computes the same exact optimum in polynomial time (see DESIGN.md,
// substitutions).
package assignment

import (
	"fmt"
	"math"
)

// Min solves min-cost assignment for the cost matrix (rows x cols,
// rows <= cols): it returns rowTo with rowTo[i] the column assigned to row
// i (all distinct) minimizing the total cost, together with that cost.
// Costs may be negative; every row is assigned.
func Min(cost [][]float64) (rowTo []int, total float64, err error) {
	n := len(cost)
	if n == 0 {
		return nil, 0, nil
	}
	m := len(cost[0])
	if n > m {
		return nil, 0, fmt.Errorf("assignment: %d rows exceed %d columns", n, m)
	}
	for i, row := range cost {
		if len(row) != m {
			return nil, 0, fmt.Errorf("assignment: ragged cost matrix at row %d", i)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, 0, fmt.Errorf("assignment: invalid cost at (%d,%d)", i, j)
			}
		}
	}

	// 1-indexed potentials over rows (u) and columns (v); p[j] is the row
	// matched to column j (0 = none); way[j] is the previous column on the
	// alternating path found by the Dijkstra-like scan.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowTo = make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowTo[p[j]-1] = j - 1
		}
	}
	for i := 0; i < n; i++ {
		total += cost[i][rowTo[i]]
	}
	return rowTo, total, nil
}

// Max solves max-profit assignment by negating the matrix; same contract
// as Min.
func Max(profit [][]float64) (rowTo []int, total float64, err error) {
	neg := make([][]float64, len(profit))
	for i, row := range profit {
		neg[i] = make([]float64, len(row))
		for j, c := range row {
			neg[i][j] = -c
		}
	}
	rowTo, negTotal, err := Min(neg)
	return rowTo, -negTotal, err
}
