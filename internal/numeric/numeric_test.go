package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHarmonic(t *testing.T) {
	cases := []struct {
		k    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.0 + 0.5 + 1.0/3.0},
		{4, 1.0 + 0.5 + 1.0/3.0 + 0.25},
	}
	for _, c := range cases {
		if got := Harmonic(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestHarmonicPrefixConsistent(t *testing.T) {
	pre := HarmonicPrefix(50)
	for k := 0; k <= 50; k++ {
		if !AlmostEqual(pre[k], Harmonic(k), 1e-12) {
			t.Fatalf("prefix[%d]=%g, Harmonic=%g", k, pre[k], Harmonic(k))
		}
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1, 1, 0) {
		t.Fatal("identical values must compare equal")
	}
	if !AlmostEqual(1e9, 1e9*(1+1e-12), 1e-9) {
		t.Fatal("relative tolerance should apply at large magnitude")
	}
	if AlmostEqual(0, 1e-3, 1e-9) {
		t.Fatal("clearly different values must not compare equal")
	}
	if !AlmostEqual(0, 1e-12, 1e-9) {
		t.Fatal("absolute tolerance should apply near zero")
	}
}

func TestSumMatchesNaiveOnSmallInputs(t *testing.T) {
	f := func(xs []float64) bool {
		var naive float64
		ok := true
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				ok = false
				break
			}
			naive += x
		}
		if !ok {
			return true // skip pathological inputs
		}
		return AlmostEqual(Sum(xs), naive, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestSumCompensates(t *testing.T) {
	// 1 followed by many tiny values that naive summation in float32-like
	// patterns would drop; Kahan keeps them.
	xs := make([]float64, 1+1000)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1000*1e-16
	if math.Abs(got-want) > 1e-18 {
		t.Fatalf("Sum = %.20f, want %.20f", got, want)
	}
}

func TestClamp01(t *testing.T) {
	if Clamp01(-0.1) != 0 || Clamp01(1.1) != 1 || Clamp01(0.5) != 0.5 {
		t.Fatal("Clamp01 wrong")
	}
}
