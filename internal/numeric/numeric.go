// Package numeric holds the small numeric helpers shared across the
// repository: harmonic numbers (used by the Upsilon_H ranking function and
// its 1/H_k approximation bound in Section 5.3), tolerant floating point
// comparison for cross-checking algebraic computations against enumeration,
// and compensated summation for long probability sums.
package numeric

import "math"

// DefaultTol is the absolute/relative tolerance used when comparing
// probabilities computed by two independent methods (generating functions
// vs. possible-world enumeration).  Enumeration instances are kept small so
// accumulated float error stays far below this.
const DefaultTol = 1e-9

// Harmonic returns the k-th harmonic number H_k = sum_{i=1..k} 1/i, with
// H_0 = 0.
func Harmonic(k int) float64 {
	s := 0.0
	for i := k; i >= 1; i-- { // summing small-to-large reduces error
		s += 1 / float64(i)
	}
	return s
}

// HarmonicPrefix returns the slice [H_0, H_1, ..., H_k].
func HarmonicPrefix(k int) []float64 {
	out := make([]float64, k+1)
	for i := 1; i <= k; i++ {
		out[i] = out[i-1] + 1/float64(i)
	}
	return out
}

// AlmostEqual reports whether a and b are equal within tol, interpreted as
// an absolute tolerance for small magnitudes and relative otherwise.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Sum returns the compensated (Kahan) sum of xs.
func Sum(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// Clamp01 clamps p into [0, 1]; generating-function arithmetic can drift a
// hair outside the unit interval and callers that feed probabilities into
// comparisons want them clamped.
func Clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
