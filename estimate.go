package consensus

import (
	"context"
	"math/rand"

	"consensus/internal/genfunc"
	"consensus/internal/montecarlo"
)

// Estimate is a Monte Carlo estimate of an expectation (mean, standard
// error, sample count).
type Estimate = montecarlo.Estimate

// Comparison is a paired Monte Carlo comparison of two candidate answers.
type Comparison = montecarlo.Comparison

// EstimateExpected estimates E[f(pw)] by sampling possible worlds; use it
// for quantities without a closed form or on databases too large to
// enumerate.
func EstimateExpected(t *Tree, f func(*World) float64, samples int, rng *rand.Rand) (Estimate, error) {
	return montecarlo.ExpectedValue(context.Background(), t, f, samples, rng)
}

// EstimateExpectedContext is EstimateExpected with cancellation: the
// sampling loop stops promptly when ctx is cancelled or its deadline
// passes, returning the context's error.
func EstimateExpectedContext(ctx context.Context, t *Tree, f func(*World) float64, samples int, rng *rand.Rand) (Estimate, error) {
	return montecarlo.ExpectedValue(ctx, t, f, samples, rng)
}

// CompareAnswers estimates E[fA(pw)] and E[fB(pw)] with common random
// numbers, which typically gives a far tighter estimate of the difference
// than independent runs.
func CompareAnswers(t *Tree, fA, fB func(*World) float64, samples int, rng *rand.Rand) (Comparison, error) {
	return montecarlo.Compare(t, fA, fB, samples, rng)
}

// HoeffdingSamples returns a sample count sufficient for a (1-delta)
// confidence half-width of eps when the estimated quantity lies in
// [lo, hi].
func HoeffdingSamples(eps, lo, hi, delta float64) (int, error) {
	return montecarlo.HoeffdingSamples(eps, lo, hi, delta)
}

// RankDistributionParallel is RankDistribution computed with a worker
// pool (workers <= 0 selects GOMAXPROCS); results are identical.
func RankDistributionParallel(t *Tree, k, workers int) (*RankDist, error) {
	return genfunc.RanksParallel(t, k, workers)
}

// TopKFromWorld returns the top-k answer of a deterministic world,
// deterministic under score ties.
func TopKFromWorld(w *World, k int) TopKList {
	return TopKList(w.TopK(k))
}
