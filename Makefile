# Contributor and CI entry points.  CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce CI verbatim.

GO ?= go

.PHONY: all build test race bench lint fmt

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests (-run XXX),
# proving the bench harness itself stays green without burning CI minutes.
bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

lint:
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
