# Contributor and CI entry points.  CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce CI verbatim.

GO ?= go

# Coverage floor (percent) enforced on the serving-engine packages.
COVER_FLOOR ?= 60
COVER_PKGS  ?= ./internal/approx ./internal/engine

.PHONY: all build test race bench lint fmt cover fuzz

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests (-run XXX),
# proving the bench harness itself stays green without burning CI minutes.
# -short skips the deliberately slow exact large-tree baseline; drop it
# locally to measure the exact-vs-approx acceptance ratio.
bench:
	$(GO) test -short -run XXX -bench . -benchtime 1x ./...

# Coverage gate: the adaptive-backend and engine packages must stay above
# the floor, so new serving code lands with tests.
cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || { \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz smoke: a short randomized run of the HTTP request-decoding fuzz
# target, enough to catch decode/validation panics without burning CI time.
fuzz:
	$(GO) test ./internal/engine -run XXX -fuzz FuzzHandlerQuery -fuzztime 10s

lint:
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

fmt:
	gofmt -w .
