# Contributor and CI entry points.  CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce CI verbatim.

GO ?= go

# Coverage floor (percent) enforced on the serving-engine packages and the
# query-family packages it wires in (actual coverage ~90%).
COVER_FLOOR ?= 70
COVER_PKGS  ?= ./internal/approx ./internal/engine ./internal/rankagg \
               ./internal/cluster ./internal/aggregate ./internal/spj \
               ./internal/setconsensus

# Fixed benchtime so bench.json artifacts are comparable across commits.
BENCHTIME ?= 20x

.PHONY: all build test race bench bench-json bench-compare bench-compare-base bench-baseline lint fmt cover fuzz vulncheck cluster-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests (-run XXX),
# proving the bench harness itself stays green without burning CI minutes.
# -short skips the deliberately slow exact large-tree baseline; drop it
# locally to measure the exact-vs-approx acceptance ratio.
bench:
	$(GO) test -short -run XXX -bench . -benchtime 1x ./...

# Benchmark regression tracking: run the engine and genfunc-kernel
# benchmarks (the convolution microbenchmarks ride along) with a fixed
# -benchtime and emit both the raw benchstat-compatible text (bench.txt)
# and a parsed bench.json; CI uploads both as artifacts on pushes to main
# so the perf trajectory accumulates.
# (No pipe here: a redirect keeps `go test`'s exit status visible to make,
# so a panicking benchmark fails the target instead of shipping a partial
# artifact.)
BENCH_JSON_PKGS ?= ./internal/engine ./internal/genfunc
bench-json:
	$(GO) test -short -run XXX -bench . -benchtime $(BENCHTIME) -count 1 $(BENCH_JSON_PKGS) > bench.txt
	cat bench.txt
	$(GO) run ./cmd/benchjson -in bench.txt -out bench.json

# Benchmark regression gate: re-run the fixed-benchtime suite and fail on
# any benchmark more than BENCH_THRESHOLD slower than the committed
# baseline.  Refresh the baseline with `make bench-baseline` when a PR
# legitimately changes performance.  BENCH_MINTIME is the measured-time
# floor below which a benchmark's sample is treated as noise (reported,
# never gated): at the fixed 20-iteration benchtime, sub-microsecond
# benchmarks fluctuate far beyond any honest threshold.
BENCH_THRESHOLD ?= 1.20
BENCH_MINTIME ?= 100us
bench-compare: bench-json
	$(GO) run ./cmd/benchjson compare BENCH_baseline.json bench.json -threshold $(BENCH_THRESHOLD) -mintime $(BENCH_MINTIME)

# Same-machine benchmark gate: benchmark BENCH_BASE_REF and the current
# checkout inside one machine/process and compare those two runs, so the
# gate is immune to the committed baseline's machine dependence (the CI
# bench-samemachine job passes the PR's base commit here).  The base run
# happens in a throwaway git worktree with the base ref's own Makefile.
BENCH_BASE_REF ?= origin/main
bench-compare-base:
	rm -rf .bench-base bench_base.json
	git worktree add --force --detach .bench-base $(BENCH_BASE_REF)
	st=0; ( cd .bench-base && $(MAKE) bench-json ) || st=$$?; \
	cp .bench-base/bench.json bench_base.json || st=$$?; \
	git worktree remove --force .bench-base; exit $$st
	$(MAKE) bench-json
	$(GO) run ./cmd/benchjson compare bench_base.json bench.json -threshold $(BENCH_THRESHOLD) -mintime $(BENCH_MINTIME)

# Refresh the committed baseline from a fresh fixed-benchtime run.
bench-baseline: bench-json
	cp bench.json BENCH_baseline.json

# Coverage gate: the adaptive-backend and engine packages must stay above
# the floor, so new serving code lands with tests.
cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || { \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz smoke: short randomized runs of the HTTP request-decoding target
# (which seeds both the legacy flat form and the v1 envelope), the
# coordinator's cluster-admin endpoints, and the write-ahead-log replay
# path (committed seeds cover torn tails and corrupted checksums), enough
# to catch decode/validation/recovery panics without burning CI time.
fuzz:
	$(GO) test ./internal/engine -run XXX -fuzz FuzzHandlerQuery -fuzztime 10s
	$(GO) test ./internal/distrib -run XXX -fuzz FuzzClusterAdmin -fuzztime 10s
	$(GO) test ./internal/distrib -run XXX -fuzz FuzzWALReplay -fuzztime 10s

# Distributed-tier smoke: one durable coordinator over three loopback
# workers cross-checked byte-for-byte against a single-process server on
# the six consensus query families, then a coordinator kill-and-restart
# from its write-ahead log (recovered responses must stay byte-identical),
# then a worker kill mid-read-stream with zero allowed failures (see
# cmd/clustersmoke).
cluster-smoke:
	$(GO) run ./cmd/clustersmoke

lint:
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# Known-vulnerability scan.  Fetches govulncheck at a pinned version, so
# this target needs network access (CI always has it; offline local runs
# can skip it).
GOVULNCHECK_VERSION ?= v1.1.4
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

fmt:
	gofmt -w .
