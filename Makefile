# Contributor and CI entry points.  CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs reproduce CI verbatim.

GO ?= go

# Coverage floor (percent) enforced on the serving-engine packages and the
# query-family packages it wires in (actual coverage ~90%).
COVER_FLOOR ?= 70
COVER_PKGS  ?= ./internal/approx ./internal/engine ./internal/rankagg \
               ./internal/cluster ./internal/aggregate ./internal/spj \
               ./internal/setconsensus

# Fixed benchtime so bench.json artifacts are comparable across commits.
BENCHTIME ?= 20x

.PHONY: all build test race bench bench-json bench-compare bench-baseline lint fmt cover fuzz vulncheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke: one iteration of every benchmark, no tests (-run XXX),
# proving the bench harness itself stays green without burning CI minutes.
# -short skips the deliberately slow exact large-tree baseline; drop it
# locally to measure the exact-vs-approx acceptance ratio.
bench:
	$(GO) test -short -run XXX -bench . -benchtime 1x ./...

# Benchmark regression tracking: run the engine benchmarks with a fixed
# -benchtime and emit both the raw benchstat-compatible text (bench.txt)
# and a parsed bench.json; CI uploads both as artifacts on pushes to main
# so the perf trajectory accumulates.
# (No pipe here: a redirect keeps `go test`'s exit status visible to make,
# so a panicking benchmark fails the target instead of shipping a partial
# artifact.)
bench-json:
	$(GO) test -short -run XXX -bench . -benchtime $(BENCHTIME) -count 1 ./internal/engine > bench.txt
	cat bench.txt
	$(GO) run ./cmd/benchjson -in bench.txt -out bench.json

# Benchmark regression gate: re-run the fixed-benchtime suite and fail on
# any benchmark more than BENCH_THRESHOLD slower than the committed seed
# baseline.  Refresh the baseline with `make bench-baseline` when a PR
# legitimately changes performance.
BENCH_THRESHOLD ?= 1.20
bench-compare: bench-json
	$(GO) run ./cmd/benchjson compare BENCH_baseline.json bench.json -threshold $(BENCH_THRESHOLD)

# Refresh the committed baseline from a fresh fixed-benchtime run.
bench-baseline: bench-json
	cp bench.json BENCH_baseline.json

# Coverage gate: the adaptive-backend and engine packages must stay above
# the floor, so new serving code lands with tests.
cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || { \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Fuzz smoke: a short randomized run of the HTTP request-decoding fuzz
# target, enough to catch decode/validation panics without burning CI time.
fuzz:
	$(GO) test ./internal/engine -run XXX -fuzz FuzzHandlerQuery -fuzztime 10s

lint:
	@fmt_out="$$(gofmt -l .)"; \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# Known-vulnerability scan.  Fetches govulncheck at a pinned version, so
# this target needs network access (CI always has it; offline local runs
# can skip it).
GOVULNCHECK_VERSION ?= v1.1.4
vulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

fmt:
	gofmt -w .
