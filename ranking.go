package consensus

import (
	"consensus/internal/aggregate"
	"consensus/internal/topk"
)

// Parameterized ranking functions (the family from the authors' companion
// work that Section 5.3's Upsilon_H belongs to): rank tuples by
// Upsilon_w(t) = sum_i w(i) Pr(r(t) = i) for a position-weight function w.
type (
	// WeightFunc assigns a non-negative weight to each 1-based rank
	// position.
	WeightFunc = topk.WeightFunc
)

var (
	// StepWeight (w = 1 on 1..k) recovers PT-k / global top-k / the
	// Theorem 3 mean answer.
	StepWeight = topk.StepWeight
	// HarmonicTailWeight recovers Upsilon_H of Section 5.3.
	HarmonicTailWeight = topk.HarmonicTailWeight
	// GeometricWeight emphasizes top positions (alpha < 1).
	GeometricWeight = topk.GeometricWeight
)

// PRFValues computes Upsilon_w(t) for every tuple key, truncating rank
// sums at cutoff.
func PRFValues(t *Tree, w WeightFunc, cutoff int) (map[string]float64, error) {
	return topk.PRF(t, w, cutoff)
}

// PRFTopK returns the k tuples with the largest Upsilon_w values.
func PRFTopK(t *Tree, w WeightFunc, k, cutoff int) (TopKList, error) {
	return topk.PRFTopK(t, w, k, cutoff)
}

// Group-by counts over arbitrarily correlated trees (the Section 6.1
// matrix model generalized through the Example 2 generating function).

// GroupLabels returns the distinct labels of the tree's alternatives.
func GroupLabels(t *Tree) []string { return aggregate.Labels(t) }

// GroupCountMeanFromTree returns the expected count per label under any
// correlation model.
func GroupCountMeanFromTree(t *Tree) map[string]float64 { return aggregate.TreeMeanCounts(t) }

// GroupCountDistribution returns Pr(count(label) = c) for c = 0..n.
func GroupCountDistribution(t *Tree, label string) []float64 {
	return aggregate.TreeCountDistribution(t, label)
}

// GroupCountExpectedSqDistFromTree returns E[||r - v||^2] over the given
// labels for a candidate count vector v, under any correlation model.
func GroupCountExpectedSqDistFromTree(t *Tree, labels []string, v []float64) float64 {
	return aggregate.TreeExpectedSqDist(t, labels, v)
}
