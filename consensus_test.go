package consensus

import (
	"math/rand"
	"testing"

	"consensus/internal/numeric"
)

func quickDB(t *testing.T) *Tree {
	t.Helper()
	db, err := Independent([]TupleProb{
		{Leaf: Leaf{Key: "a", Score: 9, Label: "g1"}, Prob: 0.9},
		{Leaf: Leaf{Key: "b", Score: 7, Label: "g2"}, Prob: 0.6},
		{Leaf: Leaf{Key: "c", Score: 5, Label: "g1"}, Prob: 0.4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFacadeQuickstartFlow(t *testing.T) {
	db := quickDB(t)

	if got := WorldSizeDistribution(db); len(got) != 4 {
		t.Fatalf("size distribution %v", got)
	}
	mean := MeanWorld(db)
	if !mean.HasKey("a") || !mean.HasKey("b") || mean.HasKey("c") {
		t.Fatalf("mean world %v, want {a, b}", mean)
	}
	med := MedianWorld(db)
	if !IsPossibleWorld(db, med) {
		t.Fatal("median must be possible")
	}
	if p := WorldProbability(db, mean); !numeric.AlmostEqual(p, 0.9*0.6*0.6, 1e-12) {
		t.Fatalf("Pr(mean world) = %g", p)
	}

	for _, m := range []Metric{MetricSymmetricDifference, MetricIntersection, MetricFootrule, MetricKendall} {
		tau, err := TopKMean(db, 2, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if len(tau) != 2 || tau[0] != "a" {
			t.Fatalf("%v answer %v, want a first", m, tau)
		}
		if m.String() == "" {
			t.Fatal("metric must have a name")
		}
	}
	if _, err := TopKMean(db, 2, Metric(99)); err == nil {
		t.Fatal("unknown metric must error")
	}

	med2, err := TopKMedian(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if med2[0] != "a" {
		t.Fatalf("median top-2 %v", med2)
	}

	ups, err := TopKUpsilonH(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ups) != 2 {
		t.Fatalf("UpsilonH answer %v", ups)
	}

	pivot, err := TopKKendallPivot(db, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(pivot) != 2 {
		t.Fatalf("pivot answer %v", pivot)
	}

	if p := PrecedenceProbability(db, "a", "b"); !numeric.AlmostEqual(p, 0.9, 1e-12) {
		// a beats b whenever a is present (a has the higher score).
		t.Fatalf("Pr(a before b) = %g", p)
	}

	ws, err := EnumerateWorlds(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 8 {
		t.Fatalf("%d worlds", len(ws))
	}
}

func TestFacadeRankDistribution(t *testing.T) {
	db := quickDB(t)
	rd, err := RankDistribution(db, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(rd.PrEq("a", 1), 0.9, 1e-12) {
		t.Fatalf("Pr(r(a)=1) = %g", rd.PrEq("a", 1))
	}
}

func TestFacadeJaccard(t *testing.T) {
	db := quickDB(t)
	w, e, err := MeanWorldJaccard(db)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(e, ExpectedJaccard(db, w), 1e-9) {
		t.Fatal("reported expectation mismatch")
	}
	if d := ExpectedSymmetricDifference(db, w); d < 0 {
		t.Fatal("negative expected distance")
	}
}

func TestFacadeAggregates(t *testing.T) {
	// Convert the labeled quickstart DB into a group matrix: it is not a
	// total assignment (tuples may be absent), so conversion must fail.
	db := quickDB(t)
	if _, _, err := GroupMatrixFromTree(db); err == nil {
		t.Fatal("partial tree must be rejected")
	}
	// A proper Section 6.1 instance.
	full, err := BID([]Block{
		{Alternatives: []Leaf{{Key: "t1", Score: 1, Label: "g1"}, {Key: "t1", Score: 2, Label: "g2"}}, Probs: []float64{0.3, 0.7}},
		{Alternatives: []Leaf{{Key: "t2", Score: 3, Label: "g1"}, {Key: "t2", Score: 4, Label: "g2"}}, Probs: []float64{0.8, 0.2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, groups, err := GroupMatrixFromTree(full)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(p) != 2 {
		t.Fatalf("matrix %v groups %v", p, groups)
	}
	mean, err := GroupByCountMean(p)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(mean[0]+mean[1], 2, 1e-9) {
		t.Fatalf("mean %v must sum to 2", mean)
	}
	med, e, err := GroupByCountMedian(p)
	if err != nil {
		t.Fatal(err)
	}
	if med[0]+med[1] != 2 {
		t.Fatalf("median %v must sum to 2", med)
	}
	if e2, err := GroupByCountExpectedDistance(p, mean); err != nil || e < e2 {
		t.Fatalf("median E %g must be >= mean E %g (err %v)", e, e2, err)
	}
}

func TestFacadeClustering(t *testing.T) {
	db := quickDB(t)
	ins, c, e := ConsensusClustering(db, rand.New(rand.NewSource(2)), 10)
	if len(c) != 3 {
		t.Fatalf("clustering %v", c)
	}
	if e < 0 {
		t.Fatal("negative expected distance")
	}
	if ins.KeyIndex("a") != 0 {
		t.Fatal("instance keys wrong")
	}
	if got := NewClusterInstance(db); len(got.Keys) != 3 {
		t.Fatal("NewClusterInstance wrong")
	}
}

func TestFacadeJSONRoundTrip(t *testing.T) {
	db := quickDB(t)
	data, err := db.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseTree(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != db.String() {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadeBaselines(t *testing.T) {
	db := quickDB(t)
	if tau, err := GlobalTopK(db, 2); err != nil || len(tau) != 2 {
		t.Fatalf("GlobalTopK %v %v", tau, err)
	}
	if tau, err := PTk(db, 2, 0.5); err != nil || len(tau) == 0 {
		t.Fatalf("PTk %v %v", tau, err)
	}
	if tau, p, err := UTopK(db, 2, 0); err != nil || len(tau) == 0 || p <= 0 {
		t.Fatalf("UTopK %v %g %v", tau, p, err)
	}
	if tau, _, err := UTopKSampled(db, 2, 1000, rand.New(rand.NewSource(3))); err != nil || len(tau) == 0 {
		t.Fatalf("UTopKSampled %v %v", tau, err)
	}
	if tau, err := ExpectedRankTopK(db, 2); err != nil || len(tau) != 2 {
		t.Fatalf("ExpectedRankTopK %v %v", tau, err)
	}
	if tau := ExpectedScoreTopK(db, 2); len(tau) != 2 {
		t.Fatalf("ExpectedScoreTopK %v", tau)
	}
}
