module consensus

go 1.24
